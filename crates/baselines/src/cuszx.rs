//! cuSZx: the monolithic ultra-fast blockwise compressor (§ II):
//! each 256-element block is either *constant* (all values within the
//! bound of the block mean — one float stores the whole block) or
//! *nonconstant* (mean + fixed-width quantized residuals). Extremely
//! high throughput, lowest ratios of the family — except on mostly-zero
//! fields like RTM, where constant blocks dominate (the Table III
//! anomaly the paper notes).

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::{launch_named, DeviceSpec, GlobalRead, GlobalWrite, Grid};
use cuszi_quant::ErrorBound;
use cuszi_gpu_sim::BlockSlots;
use cuszi_tensor::NdArray;

use crate::common::{next_section, push_section, read_header, resolve_eb, write_header};

const MAGIC: &[u8; 4] = b"CSZX";
/// Elements per block.
pub const BLOCK: usize = 256;

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one block. Returns bytes: `[u8 tag]` + body.
/// tag 0 = constant: `[f32 mean]`;
/// tag 1 = residuals: `[f32 mean][u8 width][packed zigzag residuals]`.
fn encode_block(vals: &[f32], eb: f64, out: &mut Vec<u8>) {
    let mean = (vals.iter().map(|&v| v as f64).sum::<f64>() / vals.len() as f64) as f32;
    let twice_eb = 2.0 * eb;
    // Quantize each residual, then pick the lattice neighbour whose
    // f32-cast reconstruction is closest — plain rounding can land one
    // ulp outside the bound after the cast to f32.
    let resid: Vec<i64> = vals
        .iter()
        .map(|&v| {
            let r0 = ((v as f64 - mean as f64) / twice_eb).round() as i64;
            let err = |r: i64| {
                let recon = (mean as f64 + r as f64 * twice_eb) as f32;
                ((v as f64) - (recon as f64)).abs()
            };
            [r0 - 1, r0, r0 + 1]
                .into_iter()
                .min_by(|&a, &b| err(a).partial_cmp(&err(b)).unwrap())
                .unwrap()
        })
        .collect();
    if resid.iter().all(|&r| r == 0) {
        out.push(0);
        out.extend_from_slice(&mean.to_le_bytes());
        return;
    }
    let width =
        resid.iter().map(|&r| 64 - zigzag(r).leading_zeros()).max().unwrap_or(0) as u8;
    out.push(1);
    out.extend_from_slice(&mean.to_le_bytes());
    out.push(width);
    let mut bitbuf = 0u128;
    let mut nbits = 0u32;
    for &r in &resid {
        bitbuf = (bitbuf << width) | zigzag(r) as u128;
        nbits += width as u32;
        while nbits >= 8 {
            out.push((bitbuf >> (nbits - 8)) as u8);
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((bitbuf << (8 - nbits)) as u8);
    }
}

fn decode_block(src: &[u8], n: usize, eb: f64) -> Result<Vec<f32>, CuszError> {
    let (&tag, body) = src.split_first().ok_or(CuszError::CorruptArchive("cuszx empty block"))?;
    match tag {
        0 => {
            if body.len() != 4 {
                return Err(CuszError::CorruptArchive("cuszx const block size"));
            }
            let mean = f32::from_le_bytes(body.try_into().unwrap());
            Ok(vec![mean; n])
        }
        1 => {
            if body.len() < 5 {
                return Err(CuszError::CorruptArchive("cuszx block truncated"));
            }
            let mean = f32::from_le_bytes(body[0..4].try_into().unwrap());
            let width = body[4];
            if width > 50 {
                return Err(CuszError::CorruptArchive("cuszx width out of range"));
            }
            let payload = &body[5..];
            let total_bits = payload.len() * 8;
            let mut out = Vec::with_capacity(n);
            let mut bitpos = 0usize;
            let twice_eb = 2.0 * eb;
            for _ in 0..n {
                if bitpos + width as usize > total_bits {
                    return Err(CuszError::CorruptArchive("cuszx payload truncated"));
                }
                let mut v = 0u64;
                for _ in 0..width {
                    v = (v << 1) | ((payload[bitpos / 8] >> (7 - bitpos % 8)) & 1) as u64;
                    bitpos += 1;
                }
                out.push((mean as f64 + unzigzag(v) as f64 * twice_eb) as f32);
            }
            Ok(out)
        }
        _ => Err(CuszError::CorruptArchive("cuszx unknown block tag")),
    }
}

/// The cuSZx baseline codec.
#[derive(Clone, Copy, Debug)]
pub struct Cuszx {
    pub eb: ErrorBound,
    pub device: DeviceSpec,
}

impl Cuszx {
    /// Standard configuration at a bound.
    pub fn new(eb: ErrorBound, device: DeviceSpec) -> Self {
        Cuszx { eb, device }
    }
}

impl Codec for Cuszx {
    fn name(&self) -> &'static str {
        "cuSZx"
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        let eb = resolve_eb(data, self.eb)?;
        let n = data.len();
        let nblocks = n.div_ceil(BLOCK);
        let parts: BlockSlots<Vec<u8>> = BlockSlots::new(nblocks.max(1));
        let stats = {
            let src = GlobalRead::new(data.as_slice());
            launch_named(&self.device, Grid::linear(nblocks.max(1) as u32, 256), "cuszx-encode", |ctx| {
                let b = ctx.block_linear() as usize;
                let start = b * BLOCK;
                if start >= n {
                    return;
                }
                let end = (start + BLOCK).min(n);
                let mut buf = ctx.scratch(end - start, 0f32);
                ctx.read_span(&src, start, &mut buf);
                ctx.add_flops(buf.len() as u64 * 4);
                let mut body = Vec::new();
                encode_block(&buf, eb, &mut body);
                parts.put(b, body);
            })
        };
        let parts = parts.into_compact();
        let lens: Vec<u8> =
            parts.iter().flat_map(|p| (p.len() as u32).to_le_bytes()).collect();
        let payload: Vec<u8> = parts.into_iter().flatten().collect();
        let mut out = write_header(MAGIC, data.shape(), eb);
        push_section(&mut out, &lens);
        push_section(&mut out, &payload);
        Ok((out, CodecArtifacts { kernels: vec![stats] }))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (shape, eb) = read_header(bytes, MAGIC)?;
        if eb <= 0.0 {
            return Err(CuszError::CorruptArchive("non-positive error bound"));
        }
        let mut at = crate::common::BASE_HEADER_LEN;
        let lens_b = next_section(bytes, &mut at)?;
        let payload = next_section(bytes, &mut at)?;
        if lens_b.len() % 4 != 0 {
            return Err(CuszError::CorruptArchive("cuszx lens misaligned"));
        }
        let lens: Vec<u32> =
            lens_b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        let n = shape.len();
        let nblocks = n.div_ceil(BLOCK);
        if lens.len() != nblocks {
            return Err(CuszError::CorruptArchive("cuszx block count mismatch"));
        }
        let mut offsets = Vec::with_capacity(nblocks);
        let mut acc = 0usize;
        for &l in &lens {
            offsets.push(acc);
            acc += l as usize;
        }
        if acc != payload.len() {
            return Err(CuszError::CorruptArchive("cuszx payload length mismatch"));
        }
        let mut out = vec![0f32; n];
        let failed: BlockSlots<CuszError> = BlockSlots::new(nblocks);
        let stats = {
            let src = GlobalRead::new(payload);
            let dst = GlobalWrite::new(&mut out);
            launch_named(&self.device, Grid::linear(nblocks as u32, 256), "cuszx-decode", |ctx| {
                let b = ctx.block_linear() as usize;
                let elems = BLOCK.min(n - b * BLOCK);
                let mut buf = ctx.scratch(lens[b] as usize, 0u8);
                ctx.read_span(&src, offsets[b], &mut buf);
                match decode_block(&buf, elems, eb) {
                    Ok(vals) => {
                        ctx.add_flops(vals.len() as u64 * 2);
                        ctx.write_span(&dst, b * BLOCK, &vals);
                    }
                    Err(e) => failed.put(b, e),
                }
            })
        };
        if let Some(e) = failed.into_first() {
            return Err(e);
        }
        Ok((NdArray::from_vec(shape, out), CodecArtifacts { kernels: vec![stats] }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use cuszi_metrics::check_error_bound_f32;
    use cuszi_tensor::Shape;

    #[test]
    fn constant_block_roundtrip() {
        let vals = vec![3.5f32; 256];
        let mut buf = Vec::new();
        encode_block(&vals, 0.01, &mut buf);
        assert_eq!(buf.len(), 5);
        let back = decode_block(&buf, 256, 0.01).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= 0.01);
        }
    }

    #[test]
    fn varying_block_roundtrip_bounded() {
        let vals: Vec<f32> = (0..256).map(|i| (i as f32 * 0.1).sin() * 5.0).collect();
        let mut buf = Vec::new();
        encode_block(&vals, 1e-3, &mut buf);
        let back = decode_block(&buf, 256, 1e-3).unwrap();
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() <= 1e-3 * 1.001);
        }
    }

    #[test]
    fn roundtrip_field() {
        let data = NdArray::from_fn(Shape::d3(20, 20, 20), |z, y, x| {
            ((x + y + z) as f32 * 0.05).cos() * 3.0
        });
        let codec = Cuszx::new(ErrorBound::Abs(1e-3), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
        assert_eq!(check_error_bound_f32(data.as_slice(), recon.as_slice(), 1e-3), None);
    }

    #[test]
    fn mostly_zero_field_compresses_extremely() {
        // The RTM effect: constant blocks dominate.
        let data = NdArray::from_fn(Shape::d3(16, 32, 32), |z, y, x| {
            if z == 8 && y < 4 && x < 4 {
                1.0
            } else {
                0.0
            }
        });
        let codec = Cuszx::new(ErrorBound::Abs(1e-4), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 40.0, "CR {cr}");
        let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
        assert_eq!(check_error_bound_f32(data.as_slice(), recon.as_slice(), 1e-4), None);
    }

    #[test]
    fn corrupt_archive_errors() {
        let data = NdArray::from_fn(Shape::d1(1000), |_, _, x| (x as f32).sin());
        let codec = Cuszx::new(ErrorBound::Abs(1e-3), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(codec.decompress_bytes(&bytes[..30]).is_err());
        let mut bad = bytes;
        let l = bad.len();
        bad.truncate(l - 5);
        assert!(codec.decompress_bytes(&bad).is_err());
    }
}
