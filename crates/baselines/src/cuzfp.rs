//! cuZFP (§ II): fixed-rate transform coding on 4^d blocks.
//!
//! Faithful to ZFP's architecture: per-block common-exponent fixed-point
//! promotion, an exactly-invertible integer decorrelating transform,
//! total-degree coefficient reordering, negabinary mapping, and
//! MSB-first bit-plane coding truncated to the rate budget.
//!
//! One documented substitution (see DESIGN.md): the decorrelating
//! transform is a two-level S-transform (average/difference, the 5/3
//! wavelet's integer core) rather than ZFP's patented lifted transform.
//! Both are integer, orthogonal-ish, exactly invertible smoothing
//! decorrelators; rate-distortion differs by a constant factor, not in
//! shape. As in the paper, cuZFP supports *rate*, not error bounds —
//! Table III reports it N/A and Fig. 7 sweeps its rate.

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::{launch_named, DeviceSpec, GlobalRead, GlobalWrite, Grid};
use cuszi_gpu_sim::BlockSlots;
use cuszi_tensor::{NdArray, Shape};

use crate::common::{read_header, write_header};

const MAGIC: &[u8; 4] = b"CZFP";
/// Fixed-point fraction bits (transform growth of 8x keeps i32 safe).
const FRAC_BITS: i32 = 25;
const NBMASK: u32 = 0xAAAA_AAAA;

/// Forward average/difference pair: exactly invertible.
#[inline]
fn fwd2(a: i32, b: i32) -> (i32, i32) {
    (((a as i64 + b as i64) >> 1) as i32, a - b)
}

/// Inverse of [`fwd2`].
#[inline]
fn inv2(s: i32, d: i32) -> (i32, i32) {
    let a = s + ((d + (d & 1)) >> 1);
    (a, a - d)
}

/// Two-level 4-point forward transform; output ordered by "degree":
/// `[DC, coarse diff, fine diff 0, fine diff 1]`.
#[inline]
fn fwd4(v: [i32; 4]) -> [i32; 4] {
    let (s0, d0) = fwd2(v[0], v[1]);
    let (s1, d1) = fwd2(v[2], v[3]);
    let (ss, ds) = fwd2(s0, s1);
    [ss, ds, d0, d1]
}

#[inline]
fn inv4(v: [i32; 4]) -> [i32; 4] {
    let (s0, s1) = inv2(v[0], v[1]);
    let (a, b) = inv2(s0, v[2]);
    let (c, d) = inv2(s1, v[3]);
    [a, b, c, d]
}

#[inline]
fn negabinary(x: i32) -> u32 {
    (x as u32).wrapping_add(NBMASK) ^ NBMASK
}

#[inline]
fn from_negabinary(y: u32) -> i32 {
    ((y ^ NBMASK).wrapping_sub(NBMASK)) as i32
}

/// Degree weight of each transformed position.
const DEGREE: [u32; 4] = [0, 1, 2, 2];

/// Coefficient visit order for a rank: positions sorted by total degree
/// (low-frequency first), ties by linear index.
fn reorder(rank: usize) -> Vec<usize> {
    let dims: [usize; 3] = match rank {
        1 => [1, 1, 4],
        2 => [1, 4, 4],
        _ => [4, 4, 4],
    };
    let mut idx: Vec<usize> = (0..dims[0] * dims[1] * dims[2]).collect();
    idx.sort_by_key(|&i| {
        let z = i / (dims[1] * dims[2]);
        let y = (i / dims[2]) % dims[1];
        let x = i % dims[2];
        (DEGREE[z] + DEGREE[y] + DEGREE[x], i)
    });
    idx
}

/// Apply the transform along every active axis of a 4^rank block.
fn transform_block(block: &mut [i32], rank: usize, forward: bool) {
    let dims: [usize; 3] = match rank {
        1 => [1, 1, 4],
        2 => [1, 4, 4],
        _ => [4, 4, 4],
    };
    let strides = [dims[1] * dims[2], dims[2], 1];
    // The inverse must undo the axes in reverse order.
    let axes: Vec<usize> = if forward {
        ((3 - rank)..3).collect()
    } else {
        ((3 - rank)..3).rev().collect()
    };
    for axis in axes {
        let s = strides[axis];
        // Lines along `axis`.
        for a in 0..dims[(axis + 1) % 3].max(1) {
            for b in 0..dims[(axis + 2) % 3].max(1) {
                let base = a * strides[(axis + 1) % 3] + b * strides[(axis + 2) % 3];
                let mut line = [0i32; 4];
                for (k, l) in line.iter_mut().enumerate() {
                    *l = block[base + k * s];
                }
                let out = if forward { fwd4(line) } else { inv4(line) };
                for (k, &v) in out.iter().enumerate() {
                    block[base + k * s] = v;
                }
            }
        }
    }
}

/// Per-block encoded bit budget for a rate.
fn block_bits(rate: f64, elems: usize) -> usize {
    ((rate * elems as f64).ceil() as usize).max(16)
}

/// Encoded byte length of one block.
fn block_bytes(rate: f64, elems: usize) -> usize {
    let bits = block_bits(rate, elems);
    let planes = ((bits - 16) / elems).min(32);
    (16 + planes * elems).div_ceil(8)
}

fn encode_block(vals: &[f32], rank: usize, rate: f64) -> Vec<u8> {
    let elems = vals.len();
    debug_assert_eq!(elems, 4usize.pow(rank as u32));
    let budget = block_bits(rate, elems);
    let nplanes = ((budget - 16) / elems).min(32);
    let nbytes = (16 + nplanes * elems).div_ceil(8);
    let mut out = vec![0u8; nbytes];

    let maxabs = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if maxabs == 0.0 || nplanes == 0 {
        // Zero block: header only (flag bit stays 0).
        return out;
    }
    // emax: max |v| < 2^emax.
    let emax = (maxabs.log2().floor() as i32) + 1;

    // Fixed point.
    let scale = (FRAC_BITS - emax) as f64;
    let mut q: Vec<i32> = vals
        .iter()
        .map(|&v| ((v as f64) * scale.exp2()).round() as i32)
        .collect();
    transform_block(&mut q, rank, true);
    let order = reorder(rank);
    let nb: Vec<u32> = order.iter().map(|&i| negabinary(q[i])).collect();

    // Per-block precision alignment: emit planes downward from the
    // highest *occupied* bit-plane (what ZFP's group testing achieves
    // bit-by-bit); the top plane travels in the header.
    let top = match nb.iter().map(|&c| 32 - c.leading_zeros()).max().unwrap_or(0) {
        0 => return out, // all coefficients zero: keep the zero-block flag
        bits => bits as usize - 1,
    };
    let header: u16 = 1 | (((emax + 256) as u16) << 1) | ((top as u16) << 10);
    out[0] = header as u8;
    out[1] = (header >> 8) as u8;

    let emit = nplanes.min(top + 1);
    let mut bitpos = 16usize;
    for plane in (top + 1 - emit..=top).rev() {
        for &c in &nb {
            if (c >> plane) & 1 != 0 {
                out[bitpos / 8] |= 1 << (7 - bitpos % 8);
            }
            bitpos += 1;
        }
    }
    out
}

fn decode_block(src: &[u8], rank: usize, rate: f64) -> Result<Vec<f32>, CuszError> {
    let elems = 4usize.pow(rank as u32);
    let budget = block_bits(rate, elems);
    let nplanes = ((budget - 16) / elems).min(32);
    let nbytes = (16 + nplanes * elems).div_ceil(8);
    if src.len() != nbytes {
        return Err(CuszError::CorruptArchive("zfp block size mismatch"));
    }
    let header = src[0] as u16 | ((src[1] as u16) << 8);
    if header & 1 == 0 {
        return Ok(vec![0.0; elems]);
    }
    let emax = (((header >> 1) & 0x1FF) as i32) - 256;
    if !(-200..200).contains(&emax) {
        return Err(CuszError::CorruptArchive("zfp exponent out of range"));
    }
    let top = ((header >> 10) & 0x1F) as usize;

    let emit = nplanes.min(top + 1);
    let mut nb = vec![0u32; elems];
    let mut bitpos = 16usize;
    for plane in (top + 1 - emit..=top).rev() {
        for c in nb.iter_mut() {
            if (src[bitpos / 8] >> (7 - bitpos % 8)) & 1 != 0 {
                *c |= 1 << plane;
            }
            bitpos += 1;
        }
    }
    let order = reorder(rank);
    let mut q = vec![0i32; elems];
    for (k, &i) in order.iter().enumerate() {
        q[i] = from_negabinary(nb[k]);
    }
    transform_block(&mut q, rank, false);
    let scale = (emax - FRAC_BITS) as f64;
    Ok(q.iter().map(|&v| ((v as f64) * scale.exp2()) as f32).collect())
}

/// The cuZFP baseline codec (fixed rate in bits/value).
#[derive(Clone, Copy, Debug)]
pub struct Cuzfp {
    /// Bits per value (e.g. 4.0 for 8:1 on f32).
    pub rate: f64,
    pub device: DeviceSpec,
}

impl Cuzfp {
    /// Fixed-rate configuration.
    pub fn new(rate: f64, device: DeviceSpec) -> Self {
        Cuzfp { rate, device }
    }
}

fn block_grid(shape: Shape) -> (Vec<[usize; 3]>, [usize; 3]) {
    let bc = shape.block_counts([4.min(shape.dims3()[0]).max(1), 4, 4]);
    // Block decomposition is always over 4^rank tiles on active axes.
    let dims = shape.dims3();
    let rank = shape.rank();
    let counts = [
        if rank == 3 { dims[0].div_ceil(4) } else { 1 },
        if rank >= 2 { dims[1].div_ceil(4) } else { 1 },
        dims[2].div_ceil(4),
    ];
    let mut origins = Vec::with_capacity(counts.iter().product());
    for z in 0..counts[0] {
        for y in 0..counts[1] {
            for x in 0..counts[2] {
                origins.push([z * 4, y * 4, x * 4]);
            }
        }
    }
    let _ = bc;
    (origins, counts)
}

impl Codec for Cuzfp {
    fn name(&self) -> &'static str {
        "cuZFP"
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        if !(self.rate.is_finite() && self.rate > 0.0 && self.rate <= 34.0) {
            return Err(CuszError::InvalidConfig("zfp rate must be in (0, 34]"));
        }
        if !data.all_finite() {
            return Err(CuszError::NonFiniteInput);
        }
        let shape = data.shape();
        let rank = shape.rank();
        let elems = 4usize.pow(rank as u32);
        let (origins, _) = block_grid(shape);
        let bbytes = block_bytes(self.rate, elems);

        let mut out = write_header(MAGIC, shape, self.rate);
        let base = out.len();
        out.resize(base + origins.len() * bbytes, 0);

        let stats = {
            let src = GlobalRead::new(data.as_slice());
            let dst = GlobalWrite::new(&mut out[base..]);
            launch_named(&self.device, Grid::linear(origins.len().max(1) as u32, 256), "cuzfp-encode", |ctx| {
                let b = ctx.block_linear() as usize;
                if b >= origins.len() {
                    return;
                }
                // Bill the gather (strided rows of 4 floats).
                let o = origins[b];
                let dims = shape.dims3();
                let mut idx = Vec::with_capacity(elems);
                let ext = |a: usize| if a >= 3 - rank { 4 } else { 1 };
                for z in 0..ext(0) {
                    for y in 0..ext(1) {
                        for x in 0..ext(2) {
                            idx.push(shape.index3(
                                (o[0] + z).min(dims[0] - 1),
                                (o[1] + y).min(dims[1] - 1),
                                (o[2] + x).min(dims[2] - 1),
                            ));
                        }
                    }
                }
                let mut vals = ctx.scratch(elems, 0f32);
                ctx.read_gather(&src, &idx, &mut vals);
                ctx.add_flops(elems as u64 * 12);
                let enc = encode_block(&vals, rank, self.rate);
                ctx.write_span(&dst, b * bbytes, &enc);
            })
        };
        Ok((out, CodecArtifacts { kernels: vec![stats] }))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (shape, rate) = read_header(bytes, MAGIC)?;
        if !(rate > 0.0 && rate <= 34.0) {
            return Err(CuszError::CorruptArchive("zfp rate out of range"));
        }
        let rank = shape.rank();
        let elems = 4usize.pow(rank as u32);
        let bbytes = block_bytes(rate, elems);
        // Validate the payload size arithmetically *before* materializing
        // the origin table: a corrupt header with huge dims must not
        // drive the table allocation.
        let dims = shape.dims3();
        let expected_blocks: u64 = [
            if rank == 3 { dims[0].div_ceil(4) } else { 1 },
            if rank >= 2 { dims[1].div_ceil(4) } else { 1 },
            dims[2].div_ceil(4),
        ]
        .iter()
        .map(|&c| c as u64)
        .product();
        let payload = &bytes[crate::common::BASE_HEADER_LEN..];
        if payload.len() as u64 != expected_blocks * bbytes as u64 {
            return Err(CuszError::CorruptArchive("zfp payload size mismatch"));
        }
        let (origins, _) = block_grid(shape);

        let mut out = vec![0f32; shape.len()];
        let failed: BlockSlots<CuszError> = BlockSlots::new(origins.len().max(1));
        let stats = {
            let src = GlobalRead::new(payload);
            let dst = GlobalWrite::new(&mut out);
            launch_named(&self.device, Grid::linear(origins.len().max(1) as u32, 256), "cuzfp-decode", |ctx| {
                let b = ctx.block_linear() as usize;
                if b >= origins.len() {
                    return;
                }
                let mut buf = ctx.scratch(bbytes, 0u8);
                ctx.read_span(&src, b * bbytes, &mut buf);
                let vals = match decode_block(&buf, rank, rate) {
                    Ok(v) => v,
                    Err(e) => {
                        failed.put(b, e);
                        return;
                    }
                };
                ctx.add_flops(elems as u64 * 12);
                // Scatter the valid (unpadded) region.
                let o = origins[b];
                let ext = |a: usize| if a >= 3 - rank { 4 } else { 1 };
                let mut idx = Vec::new();
                let mut v = Vec::new();
                for z in 0..ext(0) {
                    for y in 0..ext(1) {
                        for x in 0..ext(2) {
                            if o[0] + z < dims[0] && o[1] + y < dims[1] && o[2] + x < dims[2] {
                                idx.push(shape.index3(o[0] + z, o[1] + y, o[2] + x));
                                v.push(vals[(z * ext(1) + y) * ext(2) + x]);
                            }
                        }
                    }
                }
                ctx.write_scatter(&dst, &idx, &v);
            })
        };
        if let Some(e) = failed.into_first() {
            return Err(e);
        }
        Ok((NdArray::from_vec(shape, out), CodecArtifacts { kernels: vec![stats] }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use cuszi_metrics::distortion;
    use proptest::prelude::*;

    #[test]
    fn fwd2_inv2_roundtrip_exhaustive_small() {
        for a in -50i32..50 {
            for b in -50i32..50 {
                let (s, d) = fwd2(a, b);
                assert_eq!(inv2(s, d), (a, b), "({a},{b})");
            }
        }
    }

    #[test]
    fn transform_roundtrip_3d() {
        let mut block: Vec<i32> = (0..64).map(|i| (i * i) - 1000).collect();
        let orig = block.clone();
        transform_block(&mut block, 3, true);
        assert_ne!(block, orig, "transform must do something");
        transform_block(&mut block, 3, false);
        assert_eq!(block, orig);
    }

    #[test]
    fn negabinary_roundtrip() {
        for x in [0i32, 1, -1, 12345, -54321, i32::MAX / 2, i32::MIN / 2] {
            assert_eq!(from_negabinary(negabinary(x)), x);
        }
    }

    #[test]
    fn negabinary_of_small_values_has_high_zero_planes() {
        // The property bit-plane truncation relies on: small magnitudes
        // occupy only low planes.
        assert_eq!(negabinary(0), 0);
        assert!(negabinary(3).leading_zeros() >= 28);
    }

    #[test]
    fn reorder_puts_dc_first() {
        let r3 = reorder(3);
        assert_eq!(r3[0], 0);
        assert_eq!(r3.len(), 64);
        let mut sorted = r3.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn high_rate_block_is_near_lossless() {
        let vals: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.3).sin() * 7.0).collect();
        let enc = encode_block(&vals, 3, 30.0);
        let dec = decode_block(&enc, 3, 30.0).unwrap();
        for (a, b) in vals.iter().zip(&dec) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn zero_block_is_exact() {
        let vals = vec![0.0f32; 64];
        let enc = encode_block(&vals, 3, 8.0);
        assert_eq!(decode_block(&enc, 3, 8.0).unwrap(), vals);
    }

    #[test]
    fn rate_controls_archive_size_exactly() {
        let data = NdArray::from_fn(Shape::d3(16, 16, 16), |z, y, x| {
            ((x + y + z) as f32 * 0.2).sin()
        });
        for rate in [2.0, 4.0, 8.0] {
            let codec = Cuzfp::new(rate, A100);
            let (bytes, _) = codec.compress_bytes(&data).unwrap();
            let blocks = 4 * 4 * 4;
            assert_eq!(
                bytes.len(),
                crate::common::BASE_HEADER_LEN + blocks * block_bytes(rate, 64)
            );
        }
    }

    #[test]
    fn higher_rate_gives_higher_psnr() {
        let data = NdArray::from_fn(Shape::d3(20, 20, 20), |z, y, x| {
            ((x as f32) * 0.15).sin() * 2.0 + ((y as f32) * 0.1).cos() + (z as f32) * 0.05
        });
        let mut last = 0.0;
        for rate in [2.0, 6.0, 12.0] {
            let codec = Cuzfp::new(rate, A100);
            let (bytes, _) = codec.compress_bytes(&data).unwrap();
            let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
            let p = distortion(data.as_slice(), recon.as_slice()).unwrap().psnr;
            assert!(p > last, "rate {rate}: {p} !> {last}");
            last = p;
        }
        assert!(last > 60.0, "12 bits/value should exceed 60 dB: {last}");
    }

    #[test]
    fn non_multiple_dims_roundtrip() {
        let data = NdArray::from_fn(Shape::d3(7, 9, 11), |z, y, x| {
            (x as f32) * 0.1 + (y as f32) * 0.2 + (z as f32) * 0.3
        });
        let codec = Cuzfp::new(16.0, A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
        let d = distortion(data.as_slice(), recon.as_slice()).unwrap();
        assert!(d.psnr > 50.0, "{}", d.psnr);
    }

    #[test]
    fn corrupt_archive_errors() {
        let data = NdArray::from_fn(Shape::d2(8, 8), |_, y, x| (x + y) as f32);
        let codec = Cuzfp::new(8.0, A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(codec.decompress_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(codec.decompress_bytes(&bytes[..10]).is_err());
    }

    proptest! {
        #[test]
        fn prop_transform_invertible(vals in proptest::collection::vec(-(1 << 25)..(1 << 25), 64)) {
            let mut block: Vec<i32> = vals.clone();
            transform_block(&mut block, 3, true);
            transform_block(&mut block, 3, false);
            prop_assert_eq!(block, vals);
        }

        #[test]
        fn prop_block_roundtrip_bounded(vals in proptest::collection::vec(-100.0f32..100.0, 16)) {
            let enc = encode_block(&vals, 2, 24.0);
            let dec = decode_block(&enc, 2, 24.0).unwrap();
            let maxv = vals.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
            let tol = (maxv as f64) * 1e-3 + 1e-5;
            for (a, b) in vals.iter().zip(&dec) {
                prop_assert!(((a - b).abs() as f64) < tol, "{} vs {}", a, b);
            }
        }
    }
}
