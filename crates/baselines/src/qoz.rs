//! QoZ: the CPU interpolation-based reference compressor (§ VII-C.2's
//! "latest interpolation-based art on the CPU platform"). Whole-grid
//! tuned multi-level interpolation (anchor stride 64) + the same
//! Huffman + Bitcomp lossless stack. No GPU kernels — its throughput in
//! the case studies is the published single-core figure
//! ([`QOZ_CPU_THROUGHPUT_GBPS`]).

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::{DeviceSpec, A100};
use cuszi_huffman::{decode_gpu_serial, encode_gpu, histogram_gpu, Codebook, EncodedStream};
use cuszi_predict::cpu_interp::{self, CpuInterpParams};
use cuszi_predict::splines::CubicVariant;
use cuszi_predict::tuning::profile_and_tune;
use cuszi_quant::ErrorBound;
use cuszi_tensor::stats::ValueRange;
use cuszi_tensor::NdArray;

use crate::common::{
    next_section, push_outliers, push_section, read_header, read_outliers, resolve_eb,
    write_header,
};

const MAGIC: &[u8; 4] = b"QOZ_";
const RADIUS: u16 = 512;

/// The single-core compression rate the paper cites for QoZ (§ I:
/// "QoZ achieves a single-core compressing rate of up to 0.23 GB/s").
pub const QOZ_CPU_THROUGHPUT_GBPS: f64 = 0.23;

/// The QoZ CPU reference codec.
#[derive(Clone, Copy, Debug)]
pub struct Qoz {
    pub eb: ErrorBound,
}

impl Qoz {
    /// Standard configuration at a bound.
    pub fn new(eb: ErrorBound) -> Self {
        Qoz { eb }
    }

    fn device() -> DeviceSpec {
        // The Huffman/Bitcomp helpers need a device handle for their
        // traffic accounting; QoZ's reported throughput ignores it.
        A100
    }
}

impl Codec for Qoz {
    fn name(&self) -> &'static str {
        "QoZ (CPU)"
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        let eb = resolve_eb(data, self.eb)?;
        let range = ValueRange::of(data.as_slice()).ok_or(CuszError::NonFiniteInput)?;
        let rel = self.eb.relative(range.range() as f64);
        let (cfg, _) = profile_and_tune(data, rel);
        let params = CpuInterpParams::qoz();
        let pred = cpu_interp::compress(data, eb, RADIUS, &cfg, params);

        let (hist, _) =
            histogram_gpu(&pred.codes, 2 * RADIUS as usize, RADIUS, 0, &Self::device());
        let book =
            Codebook::from_histogram(&hist).map_err(|_| CuszError::LosslessStage("codebook"))?;
        let (stream, _) = encode_gpu(&pred.codes, &book, &Self::device());

        // Payload: tuned config + anchors + codebook + stream + outliers,
        // then the lossless de-redundancy pass (zstd in real QoZ; our
        // bitcomp substitute here).
        let mut payload = Vec::new();
        let mut cfg_bytes = Vec::new();
        cfg_bytes.extend_from_slice(&cfg.alpha.to_le_bytes());
        cfg_bytes.push(
            cfg.variants
                .iter()
                .enumerate()
                .fold(0u8, |a, (i, v)| a | ((*v == CubicVariant::Natural) as u8) << i),
        );
        cfg_bytes.push(cfg.order.len() as u8);
        cfg_bytes.extend(cfg.order.iter().map(|&o| o as u8));
        push_section(&mut payload, &cfg_bytes);
        let anchors_b: Vec<u8> = pred.anchors.iter().flat_map(|v| v.to_le_bytes()).collect();
        push_section(&mut payload, &anchors_b);
        push_section(&mut payload, &book.to_bytes());
        push_section(&mut payload, &stream.to_bytes());
        push_outliers(&mut payload, &pred.outliers);

        let (packed, _) = cuszi_bitcomp::compress(&payload, &Self::device());
        let mut out = write_header(MAGIC, data.shape(), eb);
        out.extend_from_slice(&packed);
        Ok((out, CodecArtifacts { kernels: Vec::new() }))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (shape, eb) = read_header(bytes, MAGIC)?;
        if eb <= 0.0 {
            return Err(CuszError::CorruptArchive("non-positive error bound"));
        }
        let (payload, _) =
            cuszi_bitcomp::decompress(&bytes[crate::common::BASE_HEADER_LEN..], &Self::device())
                .map_err(|e| CuszError::LosslessStage(e.0))?;
        let mut at = 0usize;
        let cfg_b = next_section(&payload, &mut at)?;
        if cfg_b.len() < 10 {
            return Err(CuszError::CorruptArchive("qoz config truncated"));
        }
        let alpha = f64::from_le_bytes(cfg_b[0..8].try_into().unwrap());
        if !(alpha.is_finite() && alpha >= 1.0) {
            return Err(CuszError::CorruptArchive("qoz alpha"));
        }
        let vbits = cfg_b[8];
        let order_len = cfg_b[9] as usize;
        if cfg_b.len() != 10 + order_len || order_len != shape.rank() {
            return Err(CuszError::CorruptArchive("qoz order"));
        }
        let mut order = Vec::with_capacity(order_len);
        for i in 0..order_len {
            let o = cfg_b[10 + i] as usize;
            if o > 2 || order.contains(&o) {
                return Err(CuszError::CorruptArchive("qoz order"));
            }
            order.push(o);
        }
        let cfg = cuszi_predict::tuning::InterpConfig {
            alpha,
            variants: [
                if vbits & 1 != 0 { CubicVariant::Natural } else { CubicVariant::NotAKnot },
                if vbits & 2 != 0 { CubicVariant::Natural } else { CubicVariant::NotAKnot },
                if vbits & 4 != 0 { CubicVariant::Natural } else { CubicVariant::NotAKnot },
            ],
            order,
        };

        let anchors_b = next_section(&payload, &mut at)?;
        if anchors_b.len() % 4 != 0 {
            return Err(CuszError::CorruptArchive("qoz anchors misaligned"));
        }
        let anchors: Vec<f32> =
            anchors_b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
        let params = CpuInterpParams::qoz();
        let expected =
            cuszi_predict::ginterp::anchor_len(shape, params.anchor_stride);
        if anchors.len() != expected {
            return Err(CuszError::CorruptArchive("qoz anchor count"));
        }
        let book = Codebook::from_bytes(next_section(&payload, &mut at)?)
            .map_err(|_| CuszError::CorruptArchive("qoz codebook"))?;
        let stream = EncodedStream::from_bytes(next_section(&payload, &mut at)?)
            .ok_or(CuszError::CorruptArchive("qoz stream"))?;
        if stream.n as usize != shape.len() {
            return Err(CuszError::CorruptArchive("qoz stream length"));
        }
        let outliers = read_outliers(&payload, &mut at, shape.len())?;
        let (codes, _) = decode_gpu_serial(&stream, &book, &Self::device())
            .map_err(|e| CuszError::LosslessStage(e.msg))?;
        let data =
            cpu_interp::decompress(&codes, &anchors, &outliers, shape, eb, RADIUS, &cfg, params);
        Ok((data, CodecArtifacts { kernels: Vec::new() }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_metrics::check_error_bound;
    use cuszi_tensor::Shape;

    fn field(shape: Shape) -> NdArray<f32> {
        NdArray::from_fn(shape, |z, y, x| {
            ((x as f32) * 0.07).sin() * 2.0 + ((y as f32) * 0.06).cos() + (z as f32) * 0.015
        })
    }

    #[test]
    fn roundtrip_bounded() {
        let data = field(Shape::d3(40, 40, 40));
        let codec = Qoz::new(ErrorBound::Rel(1e-3));
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let (_, eb) = read_header(&bytes, MAGIC).unwrap();
        let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
        assert_eq!(check_error_bound(data.as_slice(), recon.as_slice(), eb), None);
    }

    #[test]
    fn qoz_beats_or_matches_cusz_ratio_on_smooth_data() {
        // The paper's § VII-C.2 finding: CPU QoZ still edges out the GPU
        // compressors in ratio.
        use crate::cusz::Cusz;
        use cuszi_gpu_sim::A100;
        let data = field(Shape::d3(48, 48, 48));
        let qoz = Qoz::new(ErrorBound::Rel(1e-3));
        let cusz = Cusz::new(ErrorBound::Rel(1e-3), A100);
        let (qb, _) = qoz.compress_bytes(&data).unwrap();
        let (cb, _) = cusz.compress_bytes(&data).unwrap();
        assert!(
            qb.len() <= cb.len(),
            "QoZ {} bytes should be <= cuSZ {} bytes",
            qb.len(),
            cb.len()
        );
    }

    #[test]
    fn corrupt_archive_errors() {
        let data = field(Shape::d2(32, 32));
        let codec = Qoz::new(ErrorBound::Abs(1e-3));
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(codec.decompress_bytes(&bytes[..50]).is_err());
    }
}
