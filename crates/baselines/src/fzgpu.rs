//! FZ-GPU (§ II): Lorenzo dual-quant prediction, then — instead of
//! Huffman — a *bitshuffle* of the quant-code plane followed by
//! zero-word dictionary deduplication. Faster than cuSZ, lower ratio
//! (the bitshuffle+dedup can't exploit symbol frequencies the way
//! Huffman does), which is exactly its Table III position.

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::{launch_named, DeviceSpec, GlobalRead, GlobalWrite, Grid};
use cuszi_predict::lorenzo;
use cuszi_quant::{ErrorBound, OUTLIER_CODE};
use cuszi_gpu_sim::BlockSlots;
use cuszi_tensor::NdArray;

use crate::common::{
    next_section, push_outliers, push_section, read_header, read_outliers, resolve_eb,
    write_header,
};

const MAGIC: &[u8; 4] = b"FZGP";
const RADIUS: u16 = 512;
/// Codes per bitshuffle tile (16 bit-planes of 1024 codes = 2 KiB).
pub const TILE: usize = 1024;
/// Dedup word size in bytes.
pub const WORD: usize = 32;

/// Bias quant-codes to zigzag so the dominant (zero-error) code becomes
/// 0 and the shuffled bit-planes become mostly zero.
#[inline]
fn code_to_zigzag(code: u16) -> u16 {
    let q = code as i32 - RADIUS as i32;
    ((q << 1) ^ (q >> 15)) as u16
}

#[inline]
fn zigzag_to_code(z: u16) -> u16 {
    let q = ((z >> 1) as i16) ^ -((z & 1) as i16);
    (q as i32 + RADIUS as i32) as u16
}

/// Bitshuffle one tile of up-to-`TILE` codes: output plane `b` packs bit
/// `b` of every code, LSB plane first.
fn bitshuffle(codes: &[u16]) -> Vec<u8> {
    let n = codes.len();
    let plane_bytes = n.div_ceil(8);
    let mut out = vec![0u8; 16 * plane_bytes];
    for (i, &c) in codes.iter().enumerate() {
        for b in 0..16 {
            if (c >> b) & 1 != 0 {
                out[b * plane_bytes + i / 8] |= 1 << (i % 8);
            }
        }
    }
    out
}

fn bitunshuffle(planes: &[u8], n: usize) -> Result<Vec<u16>, CuszError> {
    let plane_bytes = n.div_ceil(8);
    if planes.len() != 16 * plane_bytes {
        return Err(CuszError::CorruptArchive("fzgpu tile size mismatch"));
    }
    let mut out = vec![0u16; n];
    for b in 0..16 {
        let plane = &planes[b * plane_bytes..(b + 1) * plane_bytes];
        for (i, o) in out.iter_mut().enumerate() {
            if (plane[i / 8] >> (i % 8)) & 1 != 0 {
                *o |= 1 << b;
            }
        }
    }
    Ok(out)
}

/// Zero-word dedup: bitmap of non-zero `WORD`-byte words + the non-zero
/// words themselves.
fn dedup(data: &[u8]) -> (Vec<u8>, Vec<u8>) {
    let nwords = data.len().div_ceil(WORD);
    let mut bitmap = vec![0u8; nwords.div_ceil(8)];
    let mut words = Vec::new();
    for w in 0..nwords {
        let start = w * WORD;
        let end = (start + WORD).min(data.len());
        let chunk = &data[start..end];
        if chunk.iter().any(|&b| b != 0) {
            bitmap[w / 8] |= 1 << (w % 8);
            words.extend_from_slice(chunk);
            // Pad the final partial word so decode is uniform.
            words.resize(words.len() + (WORD - chunk.len()), 0);
        }
    }
    (bitmap, words)
}

fn undedup(bitmap: &[u8], words: &[u8], out_len: usize) -> Result<Vec<u8>, CuszError> {
    let nwords = out_len.div_ceil(WORD);
    if bitmap.len() != nwords.div_ceil(8) {
        return Err(CuszError::CorruptArchive("fzgpu bitmap size mismatch"));
    }
    let mut out = vec![0u8; out_len];
    let mut at = 0usize;
    for w in 0..nwords {
        if (bitmap[w / 8] >> (w % 8)) & 1 != 0 {
            if at + WORD > words.len() {
                return Err(CuszError::CorruptArchive("fzgpu words truncated"));
            }
            let start = w * WORD;
            let end = (start + WORD).min(out_len);
            out[start..end].copy_from_slice(&words[at..at + (end - start)]);
            at += WORD;
        }
    }
    if at != words.len() {
        return Err(CuszError::CorruptArchive("fzgpu trailing words"));
    }
    Ok(out)
}

/// The FZ-GPU baseline codec.
#[derive(Clone, Copy, Debug)]
pub struct FzGpu {
    pub eb: ErrorBound,
    pub device: DeviceSpec,
}

impl FzGpu {
    /// Standard configuration at a bound.
    pub fn new(eb: ErrorBound, device: DeviceSpec) -> Self {
        FzGpu { eb, device }
    }
}

impl Codec for FzGpu {
    fn name(&self) -> &'static str {
        "FZ-GPU"
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        let eb = resolve_eb(data, self.eb)?;
        let pred = lorenzo::compress(data, eb, RADIUS, &self.device);
        let mut kernels = pred.kernels.clone();

        // Zigzag so outlier code 0 maps near the hot center? No:
        // OUTLIER_CODE (0) zigzags to a large value, keeping it distinct;
        // the dominant RADIUS code maps to 0 as intended.
        let zz: Vec<u16> = pred.codes.iter().map(|&c| code_to_zigzag(c)).collect();

        // Bitshuffle kernel: one tile per block.
        let ntiles = zz.len().div_ceil(TILE);
        let plane_bytes_full = TILE.div_ceil(8);
        let mut shuffled = vec![0u8; ntiles * 16 * plane_bytes_full];
        let tile_out_len = 16 * plane_bytes_full;
        let sstats = {
            let src = GlobalRead::new(&zz);
            let dst = GlobalWrite::new(&mut shuffled);
            launch_named(&self.device, Grid::linear(ntiles.max(1) as u32, 256), "fzgpu-bitshuffle", |ctx| {
                let t = ctx.block_linear() as usize;
                let start = t * TILE;
                if start >= zz.len() {
                    return;
                }
                let end = (start + TILE).min(zz.len());
                // Padded to full tile geometry up front for a uniform
                // layout; the span load fills the leading `end - start`.
                let mut buf = ctx.scratch(TILE, 0u16);
                ctx.read_span(&src, start, &mut buf[..end - start]);
                let planes = bitshuffle(&buf);
                ctx.add_flops(buf.len() as u64 * 16);
                ctx.write_span(&dst, t * tile_out_len, &planes);
            })
        };
        kernels.push(sstats);

        // Dedup (host assembly of per-tile kernel outputs).
        // Per-tile slot: (bitmap, non-zero words).
        let parts: BlockSlots<(Vec<u8>, Vec<u8>)> = BlockSlots::new(ntiles.max(1));
        let dstats = {
            let src = GlobalRead::new(&shuffled);
            launch_named(&self.device, Grid::linear(ntiles.max(1) as u32, 256), "fzgpu-dedup", |ctx| {
                let t = ctx.block_linear() as usize;
                let start = t * tile_out_len;
                if start >= shuffled.len() {
                    return;
                }
                let mut buf = ctx.scratch(tile_out_len, 0u8);
                ctx.read_span(&src, start, &mut buf);
                let (bitmap, words) = dedup(&buf);
                ctx.add_flops(buf.len() as u64);
                parts.put(t, (bitmap, words));
            })
        };
        kernels.push(dstats);
        let parts = parts.into_compact();

        let mut bitmap_all = Vec::new();
        let mut words_all = Vec::new();
        let mut word_lens = Vec::with_capacity(ntiles);
        for (bm, w) in parts {
            bitmap_all.extend_from_slice(&bm);
            word_lens.push(w.len() as u32);
            words_all.extend_from_slice(&w);
        }
        let lens_bytes: Vec<u8> = word_lens.iter().flat_map(|v| v.to_le_bytes()).collect();

        let mut out = write_header(MAGIC, data.shape(), eb);
        push_section(&mut out, &bitmap_all);
        push_section(&mut out, &lens_bytes);
        push_section(&mut out, &words_all);
        push_outliers(&mut out, &pred.outliers);
        Ok((out, CodecArtifacts { kernels }))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (shape, eb) = read_header(bytes, MAGIC)?;
        if eb <= 0.0 {
            return Err(CuszError::CorruptArchive("non-positive error bound"));
        }
        let mut at = crate::common::BASE_HEADER_LEN;
        let bitmap_all = next_section(bytes, &mut at)?;
        let lens_b = next_section(bytes, &mut at)?;
        let words_all = next_section(bytes, &mut at)?;
        let outliers = read_outliers(bytes, &mut at, shape.len())?;

        let n = shape.len();
        let ntiles = n.div_ceil(TILE);
        let plane_bytes_full = TILE.div_ceil(8);
        let tile_out_len = 16 * plane_bytes_full;
        let tile_bitmap_len = (tile_out_len / WORD).div_ceil(8);
        if lens_b.len() % 4 != 0 {
            return Err(CuszError::CorruptArchive("fzgpu lens misaligned"));
        }
        let word_lens: Vec<u32> =
            lens_b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        if word_lens.len() != ntiles || bitmap_all.len() != ntiles * tile_bitmap_len {
            return Err(CuszError::CorruptArchive("fzgpu tile table mismatch"));
        }
        let mut word_offsets = Vec::with_capacity(ntiles);
        let mut acc = 0usize;
        for &l in &word_lens {
            word_offsets.push(acc);
            acc += l as usize;
        }
        if acc != words_all.len() {
            return Err(CuszError::CorruptArchive("fzgpu words length mismatch"));
        }

        let mut codes = vec![0u16; n];
        let failed: BlockSlots<CuszError> = BlockSlots::new(ntiles.max(1));
        let stats = {
            let bsrc = GlobalRead::new(bitmap_all);
            let wsrc = GlobalRead::new(words_all);
            let dst = GlobalWrite::new(&mut codes);
            launch_named(&self.device, Grid::linear(ntiles.max(1) as u32, 256), "fzgpu-decode", |ctx| {
                let t = ctx.block_linear() as usize;
                if t * TILE >= n {
                    return;
                }
                let mut bm = ctx.scratch(tile_bitmap_len, 0u8);
                ctx.read_span(&bsrc, t * tile_bitmap_len, &mut bm);
                let wl = word_lens[t] as usize;
                let mut w = ctx.scratch(wl, 0u8);
                ctx.read_span(&wsrc, word_offsets[t], &mut w);
                let planes = match undedup(&bm, &w, tile_out_len) {
                    Ok(p) => p,
                    Err(e) => {
                        failed.put(t, e);
                        return;
                    }
                };
                match bitunshuffle(&planes, TILE) {
                    Ok(zz) => {
                        let elems = TILE.min(n - t * TILE);
                        let decoded: Vec<u16> =
                            zz[..elems].iter().map(|&z| zigzag_to_code(z)).collect();
                        ctx.add_flops(elems as u64 * 16);
                        ctx.write_span(&dst, t * TILE, &decoded);
                    }
                    Err(e) => failed.put(t, e),
                }
            })
        };
        if let Some(e) = failed.into_first() {
            return Err(e);
        }
        let mut kernels = vec![stats];
        // Screen decoded codes: anything outside the alphabet is corrupt.
        if codes.iter().any(|&c| c != OUTLIER_CODE && c >= 2 * RADIUS) {
            return Err(CuszError::CorruptArchive("fzgpu code out of alphabet"));
        }
        let (data, lstats) = lorenzo::decompress(&codes, &outliers, shape, eb, RADIUS, &self.device);
        kernels.extend(lstats);
        Ok((data, CodecArtifacts { kernels }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use cuszi_metrics::check_error_bound_f32;
    use cuszi_tensor::Shape;

    #[test]
    fn zigzag_code_mapping() {
        assert_eq!(code_to_zigzag(RADIUS), 0);
        assert_eq!(code_to_zigzag(RADIUS + 1), 2);
        assert_eq!(code_to_zigzag(RADIUS - 1), 1);
        for c in 0..1024u16 {
            assert_eq!(zigzag_to_code(code_to_zigzag(c)), c, "code {c}");
        }
    }

    #[test]
    fn bitshuffle_roundtrip() {
        let codes: Vec<u16> = (0..TILE).map(|i| ((i * 37) % 1024) as u16).collect();
        let planes = bitshuffle(&codes);
        assert_eq!(bitunshuffle(&planes, TILE).unwrap(), codes);
    }

    #[test]
    fn dedup_roundtrip_sparse_and_dense() {
        let mut data = vec![0u8; 2048];
        data[100] = 7;
        data[2000] = 9;
        let (bm, w) = dedup(&data);
        assert_eq!(w.len(), 2 * WORD);
        assert_eq!(undedup(&bm, &w, 2048).unwrap(), data);

        let dense: Vec<u8> = (0..1000).map(|i| (i % 251 + 1) as u8).collect();
        let (bm, w) = dedup(&dense);
        assert_eq!(undedup(&bm, &w, 1000).unwrap(), dense);
    }

    #[test]
    fn roundtrip_error_bounded() {
        let data = NdArray::from_fn(Shape::d3(20, 24, 28), |z, y, x| {
            ((x as f32) * 0.06).sin() + ((y as f32) * 0.05).cos() + (z as f32) * 0.01
        });
        let codec = FzGpu::new(ErrorBound::Rel(1e-3), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let (_, eb) = read_header(&bytes, MAGIC).unwrap();
        let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
        assert_eq!(check_error_bound_f32(data.as_slice(), recon.as_slice(), eb), None);
    }

    #[test]
    fn smooth_data_compresses_via_zero_planes() {
        let data = NdArray::from_fn(Shape::d3(32, 32, 32), |z, y, x| {
            (x as f32) * 0.01 + (y as f32) * 0.02 + (z as f32) * 0.03
        });
        let codec = FzGpu::new(ErrorBound::Rel(1e-2), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        let cr = (data.len() * 4) as f64 / bytes.len() as f64;
        assert!(cr > 5.0, "CR {cr}");
    }

    #[test]
    fn corrupt_archive_errors() {
        let data = NdArray::from_fn(Shape::d2(40, 40), |_, y, x| ((x + y) as f32 * 0.1).sin());
        let codec = FzGpu::new(ErrorBound::Abs(1e-3), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(codec.decompress_bytes(&bytes[..60]).is_err());
    }
}
