//! Shared mini-archive plumbing for the baselines.
//!
//! Each baseline uses a small fixed header (its own magic, shape, error
//! bound / rate) followed by length-prefixed sections — enough structure
//! to be self-describing and to reject corrupt input with typed errors.

use cuszi_core::CuszError;
use cuszi_quant::{ErrorBound, Outliers};
use cuszi_tensor::stats::ValueRange;
use cuszi_tensor::{NdArray, Shape};

/// Fixed header length: magic(4) + rank(1) + pad(3) + dims(24) + param(8).
pub const BASE_HEADER_LEN: usize = 40;

/// Write the common header (`param` is the absolute eb or the zfp rate).
pub fn write_header(magic: &[u8; 4], shape: Shape, param: f64) -> Vec<u8> {
    let mut out = Vec::with_capacity(BASE_HEADER_LEN);
    out.extend_from_slice(magic);
    out.push(shape.rank() as u8);
    out.extend_from_slice(&[0u8; 3]);
    for d in shape.dims3() {
        out.extend_from_slice(&(d as u64).to_le_bytes());
    }
    out.extend_from_slice(&param.to_le_bytes());
    out
}

/// Parse the common header, validating the magic.
pub fn read_header(bytes: &[u8], magic: &[u8; 4]) -> Result<(Shape, f64), CuszError> {
    if bytes.len() < BASE_HEADER_LEN {
        return Err(CuszError::CorruptArchive("baseline header truncated"));
    }
    if &bytes[0..4] != magic {
        return Err(CuszError::CorruptArchive("baseline magic mismatch"));
    }
    let rank = bytes[4] as usize;
    if !(1..=3).contains(&rank) {
        return Err(CuszError::CorruptArchive("rank out of range"));
    }
    let mut dims3 = [0usize; 3];
    for (i, d) in dims3.iter_mut().enumerate() {
        let v = u64::from_le_bytes(bytes[8 + i * 8..16 + i * 8].try_into().unwrap());
        if v == 0 || v > (1 << 40) {
            return Err(CuszError::CorruptArchive("dimension out of range"));
        }
        *d = v as usize;
    }
    // Per-axis caps alone let a crafted header wrap the element-count
    // product; bound the total as well.
    dims3
        .iter()
        .try_fold(1u64, |acc, &d| acc.checked_mul(d as u64))
        .filter(|&t| t <= 1 << 40)
        .ok_or(CuszError::CorruptArchive("element count out of range"))?;
    let shape = Shape::from_dims(&dims3[3 - rank..])
        .ok_or(CuszError::CorruptArchive("invalid shape"))?;
    let param = f64::from_le_bytes(bytes[32..40].try_into().unwrap());
    if !param.is_finite() {
        return Err(CuszError::CorruptArchive("bad parameter"));
    }
    Ok((shape, param))
}

/// Append a `u64`-length-prefixed section.
pub fn push_section(out: &mut Vec<u8>, body: &[u8]) {
    out.extend_from_slice(&(body.len() as u64).to_le_bytes());
    out.extend_from_slice(body);
}

/// Read the next length-prefixed section, advancing `at`.
pub fn next_section<'a>(bytes: &'a [u8], at: &mut usize) -> Result<&'a [u8], CuszError> {
    if *at + 8 > bytes.len() {
        return Err(CuszError::CorruptArchive("section length truncated"));
    }
    let len = u64::from_le_bytes(bytes[*at..*at + 8].try_into().unwrap()) as usize;
    *at += 8;
    if *at + len > bytes.len() {
        return Err(CuszError::CorruptArchive("section body truncated"));
    }
    let body = &bytes[*at..*at + len];
    *at += len;
    Ok(body)
}

/// Resolve a bound against data, screening the invalid cases the way
/// the core pipeline does.
pub fn resolve_eb(data: &NdArray<f32>, eb: ErrorBound) -> Result<f64, CuszError> {
    if !eb.is_valid() {
        return Err(CuszError::InvalidErrorBound);
    }
    let range = ValueRange::of(data.as_slice()).ok_or(CuszError::NonFiniteInput)?;
    let abs = eb.absolute(range.range() as f64);
    if !(abs.is_finite() && abs > 0.0) {
        return Err(CuszError::InvalidErrorBound);
    }
    // The dual-quant lattice of the Lorenzo-family baselines is i32
    // (as in the CUDA originals): reject bounds so tight that values
    // fall off the lattice rather than silently violating them.
    let maxabs = range.min.abs().max(range.max.abs()) as f64;
    if maxabs / (2.0 * abs) >= i32::MAX as f64 {
        return Err(CuszError::InvalidErrorBound);
    }
    Ok(abs)
}

/// Serialize outliers as two sections (indices, values).
pub fn push_outliers(out: &mut Vec<u8>, o: &Outliers) {
    let idx: Vec<u8> = o.indices().iter().flat_map(|v| v.to_le_bytes()).collect();
    let val: Vec<u8> = o.values().iter().flat_map(|v| v.to_le_bytes()).collect();
    push_section(out, &idx);
    push_section(out, &val);
}

/// Parse the two outlier sections.
pub fn read_outliers(bytes: &[u8], at: &mut usize, max_index: usize) -> Result<Outliers, CuszError> {
    let idx_b = next_section(bytes, at)?;
    let val_b = next_section(bytes, at)?;
    if idx_b.len() % 8 != 0 || val_b.len() % 4 != 0 {
        return Err(CuszError::CorruptArchive("outlier section misaligned"));
    }
    let idx: Vec<u64> =
        idx_b.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect();
    let val: Vec<f32> =
        val_b.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect();
    if idx.iter().any(|&i| i as usize >= max_index) {
        return Err(CuszError::CorruptArchive("outlier index out of range"));
    }
    Outliers::from_parts(idx, val).ok_or(CuszError::CorruptArchive("outlier sections disagree"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let b = write_header(b"TEST", Shape::d3(4, 5, 6), 1.25);
        let (shape, p) = read_header(&b, b"TEST").unwrap();
        assert_eq!(shape, Shape::d3(4, 5, 6));
        assert_eq!(p, 1.25);
        assert!(read_header(&b, b"XXXX").is_err());
        assert!(read_header(&b[..10], b"TEST").is_err());
    }

    #[test]
    fn sections_roundtrip() {
        let mut out = Vec::new();
        push_section(&mut out, b"hello");
        push_section(&mut out, b"");
        push_section(&mut out, &[1, 2, 3]);
        let mut at = 0;
        assert_eq!(next_section(&out, &mut at).unwrap(), b"hello");
        assert_eq!(next_section(&out, &mut at).unwrap(), b"");
        assert_eq!(next_section(&out, &mut at).unwrap(), &[1, 2, 3]);
        assert!(next_section(&out, &mut at).is_err());
    }

    #[test]
    fn truncated_section_detected() {
        let mut out = Vec::new();
        push_section(&mut out, &[9; 100]);
        let mut at = 0;
        assert!(next_section(&out[..50], &mut at).is_err());
    }

    #[test]
    fn outliers_roundtrip_and_validation() {
        let mut o = Outliers::new();
        o.push(3, 1.5);
        o.push(9, -2.5);
        let mut buf = Vec::new();
        push_outliers(&mut buf, &o);
        let mut at = 0;
        let back = read_outliers(&buf, &mut at, 10).unwrap();
        assert_eq!(back, o);
        let mut at = 0;
        assert!(read_outliers(&buf, &mut at, 9).is_err(), "index 9 out of range for len 9");
    }
}
