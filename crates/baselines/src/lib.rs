//! The baseline compressors of the paper's evaluation (§ VII-A):
//!
//! | codec | design (paper § II) | module |
//! |---|---|---|
//! | cuSZ   | Lorenzo dual-quant + coarse-grained Huffman | [`cusz`] |
//! | cuSZp  | fused 1-d blockwise Lorenzo + fixed-length encoding | [`cuszp`] |
//! | cuSZx  | monolithic blockwise constant/mean + truncated residuals | [`cuszx`] |
//! | FZ-GPU | Lorenzo + bitshuffle + zero-word dedup (no Huffman) | [`fzgpu`] |
//! | cuZFP  | fixed-rate transform coding on 4^3 blocks | [`cuzfp`] |
//! | QoZ    | CPU whole-grid tuned interpolation (reference curve) | [`qoz`] |
//!
//! All implement [`cuszi_core::Codec`]; [`with_bitcomp`] wraps any of
//! them with the external Bitcomp pass used for the right half of
//! Table III ("for fairness, we apply Bitcomp-lossless to all other
//! compressors' outputs").

pub mod common;
pub mod cusz;
pub mod cuszp;
pub mod cuszx;
pub mod cuzfp;
pub mod fzgpu;
pub mod qoz;

pub use cusz::Cusz;
pub use cuszp::Cuszp;
pub use cuszx::Cuszx;
pub use cuzfp::Cuzfp;
pub use fzgpu::FzGpu;
pub use qoz::Qoz;

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::DeviceSpec;
use cuszi_tensor::NdArray;

/// Wrap a codec with an external Bitcomp-lossless pass over its archive
/// (Table III columns i-iv).
pub struct WithBitcomp<C> {
    inner: C,
    device: DeviceSpec,
}

/// Construct a [`WithBitcomp`] wrapper.
pub fn with_bitcomp<C: Codec>(inner: C, device: DeviceSpec) -> WithBitcomp<C> {
    WithBitcomp { inner, device }
}

impl<C: Codec> Codec for WithBitcomp<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        let (bytes, mut art) = self.inner.compress_bytes(data)?;
        let (packed, stats) = cuszi_bitcomp::compress(&bytes, &self.device);
        art.kernels.extend(stats);
        Ok((packed, art))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (raw, stats) = cuszi_bitcomp::decompress(bytes, &self.device)
            .map_err(|e| CuszError::LosslessStage(e.0))?;
        let (data, mut art) = self.inner.decompress_bytes(&raw)?;
        art.kernels.push(stats);
        Ok((data, art))
    }
}
