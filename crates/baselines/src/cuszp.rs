//! cuSZp: the fused single-kernel compressor (§ II): prequantization +
//! 1-d blockwise Lorenzo + per-block fixed-length encoding. No Huffman
//! stage at all — each 32-element block stores its first lattice value
//! raw and the remaining 31 deltas bit-packed at the block's own width.
//! Very fast, but the fixed-length encoding caps its ratio well below
//! cuSZ's (the Table III ordering).

use cuszi_core::{Codec, CodecArtifacts, CuszError};
use cuszi_gpu_sim::{launch_named, DeviceSpec, GlobalRead, GlobalWrite, Grid};
use cuszi_quant::{prequant_reconstruct, prequantize, ErrorBound};
use cuszi_gpu_sim::BlockSlots;
use cuszi_tensor::NdArray;

use crate::common::{next_section, push_section, read_header, resolve_eb, write_header};

const MAGIC: &[u8; 4] = b"CSZP";
/// Elements per encoding block (cuSZp's warp-sized unit).
pub const BLOCK: usize = 32;
/// Blocks handled per thread block (grid coarsening).
const BLOCKS_PER_TB: usize = 64;

#[inline]
fn zigzag32(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag32(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encode one block: `[u8 width][i32 first][packed zigzag deltas]`.
fn encode_block(r: &[i32], out: &mut Vec<u8>) {
    debug_assert!(!r.is_empty() && r.len() <= BLOCK);
    let deltas: Vec<u64> = r.windows(2).map(|w| zigzag32(w[1] as i64 - w[0] as i64)).collect();
    let width = deltas.iter().map(|&d| 64 - d.leading_zeros()).max().unwrap_or(0) as u8;
    out.push(width);
    out.extend_from_slice(&r[0].to_le_bytes());
    let mut bitbuf = 0u128;
    let mut nbits = 0u32;
    for &d in &deltas {
        bitbuf = (bitbuf << width) | d as u128;
        nbits += width as u32;
        while nbits >= 8 {
            out.push((bitbuf >> (nbits - 8)) as u8);
            nbits -= 8;
        }
    }
    if nbits > 0 {
        out.push((bitbuf << (8 - nbits)) as u8);
    }
}

fn decode_block(src: &[u8], n: usize) -> Result<Vec<i32>, CuszError> {
    if src.len() < 5 {
        return Err(CuszError::CorruptArchive("cuszp block truncated"));
    }
    let width = src[0];
    if width > 34 {
        return Err(CuszError::CorruptArchive("cuszp width out of range"));
    }
    let first = i32::from_le_bytes(src[1..5].try_into().unwrap());
    let payload = &src[5..];
    let mut out = Vec::with_capacity(n);
    out.push(first);
    let total_bits = payload.len() * 8;
    let mut bitpos = 0usize;
    let mut prev = first as i64;
    for _ in 1..n {
        if bitpos + width as usize > total_bits {
            return Err(CuszError::CorruptArchive("cuszp payload truncated"));
        }
        let mut v = 0u64;
        for _ in 0..width {
            v = (v << 1) | ((payload[bitpos / 8] >> (7 - bitpos % 8)) & 1) as u64;
            bitpos += 1;
        }
        let cur = prev + unzigzag32(v);
        if !(i32::MIN as i64..=i32::MAX as i64).contains(&cur) {
            return Err(CuszError::CorruptArchive("cuszp delta overflow"));
        }
        out.push(cur as i32);
        prev = cur;
    }
    Ok(out)
}

/// Encoded block length for a given width/count (test oracle).
#[allow(dead_code)]
fn block_len(width: u8, n: usize) -> usize {
    5 + ((n - 1) * width as usize).div_ceil(8)
}

/// The cuSZp baseline codec.
#[derive(Clone, Copy, Debug)]
pub struct Cuszp {
    pub eb: ErrorBound,
    pub device: DeviceSpec,
}

impl Cuszp {
    /// Standard configuration at a bound.
    pub fn new(eb: ErrorBound, device: DeviceSpec) -> Self {
        Cuszp { eb, device }
    }
}

impl Codec for Cuszp {
    fn name(&self) -> &'static str {
        "cuSZp"
    }

    fn compress_bytes(&self, data: &NdArray<f32>) -> Result<(Vec<u8>, CodecArtifacts), CuszError> {
        let eb = resolve_eb(data, self.eb)?;
        let r = prequantize(data.as_slice(), eb)?;
        let nblocks = r.len().div_ceil(BLOCK);
        let ntb = nblocks.div_ceil(BLOCKS_PER_TB).max(1);

        // Fused single pass (cuSZp's design): each thread block encodes
        // its blocks into a local buffer; a host-side concatenation
        // (prefix sum in the CUDA original) assembles the archive.
        // Per-thread-block slot: (encoded bytes, per-block lengths).
        let parts: BlockSlots<(Vec<u8>, Vec<u32>)> = BlockSlots::new(ntb);
        let stats = {
            let src = GlobalRead::new(&r);
            launch_named(&self.device, Grid::linear(ntb as u32, 256), "cuszp-encode", |ctx| {
                let tb = ctx.block_linear() as usize;
                let bstart = tb * BLOCKS_PER_TB;
                let bend = (bstart + BLOCKS_PER_TB).min(nblocks);
                if bstart >= bend {
                    return;
                }
                let mut local = Vec::new();
                let mut lens = Vec::with_capacity(bend - bstart);
                for b in bstart..bend {
                    let start = b * BLOCK;
                    let end = (start + BLOCK).min(r.len());
                    let mut buf = ctx.scratch(end - start, 0i32);
                    ctx.read_span(&src, start, &mut buf);
                    ctx.add_flops(buf.len() as u64 * 3);
                    let before = local.len();
                    encode_block(&buf, &mut local);
                    lens.push((local.len() - before) as u32);
                }
                // The fused store of the encoded bytes happens in the
                // host-side concatenation (the CUDA original writes with
                // a device prefix-sum); leaving it unbilled slightly
                // favours this baseline's modelled throughput, which is
                // conservative for every cuSZ-i comparison.
                parts.put(tb, (local, lens));
            })
        };
        let parts = parts.into_compact();

        let mut lens: Vec<u32> = Vec::with_capacity(nblocks);
        let mut payload = Vec::new();
        for (body, l) in parts {
            payload.extend_from_slice(&body);
            lens.extend_from_slice(&l);
        }
        let lens_bytes: Vec<u8> = lens.iter().flat_map(|v| v.to_le_bytes()).collect();

        let mut out = write_header(MAGIC, data.shape(), eb);
        push_section(&mut out, &lens_bytes);
        push_section(&mut out, &payload);
        Ok((out, CodecArtifacts { kernels: vec![stats] }))
    }

    fn decompress_bytes(&self, bytes: &[u8]) -> Result<(NdArray<f32>, CodecArtifacts), CuszError> {
        let (shape, eb) = read_header(bytes, MAGIC)?;
        if eb <= 0.0 {
            return Err(CuszError::CorruptArchive("non-positive error bound"));
        }
        let mut at = crate::common::BASE_HEADER_LEN;
        let lens_b = next_section(bytes, &mut at)?;
        let payload = next_section(bytes, &mut at)?;
        if lens_b.len() % 4 != 0 {
            return Err(CuszError::CorruptArchive("cuszp lens misaligned"));
        }
        let lens: Vec<u32> =
            lens_b.chunks_exact(4).map(|c| u32::from_le_bytes(c.try_into().unwrap())).collect();
        let n = shape.len();
        let nblocks = n.div_ceil(BLOCK);
        if lens.len() != nblocks {
            return Err(CuszError::CorruptArchive("cuszp block count mismatch"));
        }
        let mut offsets = Vec::with_capacity(nblocks);
        let mut acc = 0usize;
        for &l in &lens {
            offsets.push(acc);
            acc += l as usize;
        }
        if acc != payload.len() {
            return Err(CuszError::CorruptArchive("cuszp payload length mismatch"));
        }

        let mut r = vec![0i32; n];
        let ntb = nblocks.div_ceil(BLOCKS_PER_TB).max(1);
        let failed: BlockSlots<CuszError> = BlockSlots::new(ntb);
        let stats = {
            let src = GlobalRead::new(payload);
            let dst = GlobalWrite::new(&mut r);
            launch_named(&self.device, Grid::linear(ntb as u32, 256), "cuszp-decode", |ctx| {
                let tb = ctx.block_linear() as usize;
                let bstart = tb * BLOCKS_PER_TB;
                let bend = (bstart + BLOCKS_PER_TB).min(nblocks);
                for b in bstart..bend {
                    let start = offsets[b];
                    let len = lens[b] as usize;
                    let mut buf = ctx.scratch(len, 0u8);
                    ctx.read_span(&src, start, &mut buf);
                    let elems = BLOCK.min(n - b * BLOCK);
                    match decode_block(&buf, elems) {
                        Ok(vals) => {
                            ctx.add_flops(vals.len() as u64 * 2);
                            ctx.write_span(&dst, b * BLOCK, &vals);
                        }
                        Err(e) => {
                            failed.put(tb, e);
                            return;
                        }
                    }
                }
            })
        };
        if let Some(e) = failed.into_first() {
            return Err(e);
        }
        let vals = prequant_reconstruct(&r, eb);
        Ok((NdArray::from_vec(shape, vals), CodecArtifacts { kernels: vec![stats] }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use cuszi_metrics::check_error_bound_f32;
    use cuszi_tensor::Shape;

    fn field(shape: Shape) -> NdArray<f32> {
        NdArray::from_fn(shape, |z, y, x| {
            ((x + y * 2 + z * 3) as f32 * 0.03).sin() * 4.0 + (x as f32) * 0.01
        })
    }

    #[test]
    fn block_codec_roundtrip() {
        let r: Vec<i32> = vec![5, 6, 6, 4, -100, 2000, 2001, 2001];
        let mut buf = Vec::new();
        encode_block(&r, &mut buf);
        assert_eq!(decode_block(&buf, r.len()).unwrap(), r);
        assert_eq!(buf.len(), block_len(buf[0], r.len()));
    }

    #[test]
    fn constant_block_is_five_bytes() {
        let r = vec![7i32; 32];
        let mut buf = Vec::new();
        encode_block(&r, &mut buf);
        assert_eq!(buf.len(), 5); // width 0: header + first only
        assert_eq!(decode_block(&buf, 32).unwrap(), r);
    }

    #[test]
    fn roundtrip_error_bounded() {
        for shape in [Shape::d1(5000), Shape::d3(20, 24, 28)] {
            let data = field(shape);
            let codec = Cuszp::new(ErrorBound::Abs(1e-3), A100);
            let (bytes, _) = codec.compress_bytes(&data).unwrap();
            let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
            assert_eq!(check_error_bound_f32(data.as_slice(), recon.as_slice(), 1e-3), None);
        }
    }

    #[test]
    fn compresses_smooth_data() {
        let data = field(Shape::d3(32, 32, 32));
        let codec = Cuszp::new(ErrorBound::Rel(1e-2), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(bytes.len() * 2 < data.len() * 4, "CR must exceed 2");
    }

    #[test]
    fn corrupt_archive_errors() {
        let data = field(Shape::d3(8, 8, 8));
        let codec = Cuszp::new(ErrorBound::Abs(1e-3), A100);
        let (bytes, _) = codec.compress_bytes(&data).unwrap();
        assert!(codec.decompress_bytes(&bytes[..bytes.len() - 3]).is_err());
        let mut bad = bytes.clone();
        let len = bad.len();
        bad.truncate(len / 2);
        assert!(codec.decompress_bytes(&bad).is_err());
    }
}
