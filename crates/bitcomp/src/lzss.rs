//! A GPULZ-style block-parallel LZSS codec — the dictionary-encoder
//! alternative § VI-B weighed against Bitcomp ("sophisticated
//! dictionary-based encoders are either limited in throughput (e.g.,
//! GPU-LZ) or compression ratio on GPU") and rejected. It is included
//! so the lossless-synergy ablation can reproduce that design-space
//! comparison rather than assert it.
//!
//! Classic LZSS over independent 4 KiB blocks: a flag bit per token,
//! literals as raw bytes, matches as 12-bit offset + 4-bit length
//! (lengths 3..18) against a sliding window within the block.

use cuszi_gpu_sim::{launch_named, BlockSlots, DeviceSpec, GlobalRead, GlobalWrite, Grid, KernelStats};

use crate::BitcompError;

/// Block granularity (matches the Bitcomp substitute).
pub const BLOCK: usize = 4096;
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = 18;
const WINDOW: usize = 4095;

/// Encode one block body: a token stream of `[flags byte][8 tokens]`
/// groups, where flag bit `i` set means token `i` is a literal byte,
/// clear means a 2-byte `(offset << 4 | len-MIN_MATCH)` match.
fn encode_block(src: &[u8], out: &mut Vec<u8>) {
    let mut i = 0usize;
    // Greedy matcher with a tiny 2-byte-hash chain head (single probe),
    // the compromise real GPU LZ implementations make for parallelism.
    let mut head = [usize::MAX; 65536];
    let mut flags_at = usize::MAX;
    let mut nflags = 8; // force a new flag byte at first token
    while i < src.len() {
        let mut match_len = 0usize;
        let mut match_off = 0usize;
        if i + MIN_MATCH <= src.len() {
            let h = (src[i] as usize) << 8 | src[i + 1] as usize;
            let cand = head[h];
            head[h] = i;
            if cand != usize::MAX && i - cand <= WINDOW {
                let mut l = 0usize;
                let max = MAX_MATCH.min(src.len() - i);
                while l < max && src[cand + l] == src[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    match_len = l;
                    match_off = i - cand;
                }
            }
        }
        if nflags == 8 {
            flags_at = out.len();
            out.push(0);
            nflags = 0;
        }
        if match_len > 0 {
            let token = ((match_off as u16) << 4) | (match_len - MIN_MATCH) as u16;
            out.extend_from_slice(&token.to_le_bytes());
            i += match_len;
        } else {
            out[flags_at] |= 1 << nflags;
            out.push(src[i]);
            i += 1;
        }
        nflags += 1;
    }
}

fn decode_block(src: &[u8], expect: usize) -> Result<Vec<u8>, BitcompError> {
    let mut out = Vec::with_capacity(expect);
    let mut i = 0usize;
    while i < src.len() && out.len() < expect {
        let flags = src[i];
        i += 1;
        for bit in 0..8 {
            if i >= src.len() || out.len() >= expect {
                break;
            }
            if flags & (1 << bit) != 0 {
                out.push(src[i]);
                i += 1;
            } else {
                if i + 2 > src.len() {
                    return Err(BitcompError("lzss match token truncated"));
                }
                let token = u16::from_le_bytes([src[i], src[i + 1]]);
                i += 2;
                let off = (token >> 4) as usize;
                let len = (token & 0xF) as usize + MIN_MATCH;
                if off == 0 || off > out.len() {
                    return Err(BitcompError("lzss match offset out of range"));
                }
                for _ in 0..len {
                    let b = out[out.len() - off];
                    out.push(b);
                }
            }
        }
    }
    if out.len() != expect {
        return Err(BitcompError("lzss block decodes to wrong size"));
    }
    Ok(out)
}

/// Compress a byte stream with block-parallel LZSS. Same archive shape
/// as the Bitcomp substitute: header + offsets + per-block payloads
/// (mode byte 0 = raw fallback, 1 = LZSS).
pub fn compress(data: &[u8], device: &DeviceSpec) -> (Vec<u8>, Vec<KernelStats>) {
    let nblocks = data.len().div_ceil(BLOCK);
    let blocks: BlockSlots<Vec<u8>> = BlockSlots::new(nblocks);
    let mut stats = Vec::new();
    if nblocks > 0 {
        let src = GlobalRead::new(data);
        stats.push(launch_named(device, Grid::linear(nblocks as u32, 256), "lzss-encode", |ctx| {
            let b = ctx.block_linear() as usize;
            let start = b * BLOCK;
            let end = (start + BLOCK).min(data.len());
            let mut buf = ctx.scratch(end - start, 0u8);
            ctx.read_span(&src, start, &mut buf);
            ctx.add_flops(buf.len() as u64 * 4);
            let mut enc = Vec::with_capacity(buf.len());
            encode_block(&buf, &mut enc);
            let body = if enc.len() >= buf.len() {
                let mut raw = Vec::with_capacity(buf.len() + 1);
                raw.push(0u8);
                raw.extend_from_slice(&buf);
                raw
            } else {
                let mut z = Vec::with_capacity(enc.len() + 1);
                z.push(1u8);
                z.extend_from_slice(&enc);
                z
            };
            blocks.put(b, body);
        }));
    }
    let blocks = blocks.into_compact();

    let mut out = Vec::new();
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(BLOCK as u32).to_le_bytes());
    out.extend_from_slice(&(nblocks as u32).to_le_bytes());
    let mut off = 0u64;
    for blk in &blocks {
        out.extend_from_slice(&off.to_le_bytes());
        off += blk.len() as u64;
    }
    let base = out.len();
    let total: usize = blocks.iter().map(|b| b.len()).sum();
    out.resize(base + total, 0);
    if nblocks > 0 {
        let offsets: Vec<usize> = {
            let mut v = Vec::with_capacity(nblocks);
            let mut acc = 0;
            for blk in &blocks {
                v.push(acc);
                acc += blk.len();
            }
            v
        };
        let dst = GlobalWrite::new(&mut out[base..]);
        stats.push(launch_named(device, Grid::linear(nblocks as u32, 256), "lzss-emit", |ctx| {
            let b = ctx.block_linear() as usize;
            ctx.write_span(&dst, offsets[b], &blocks[b]);
        }));
    }
    (out, stats)
}

/// Decompress an LZSS archive produced by [`compress`].
pub fn decompress(data: &[u8], device: &DeviceSpec) -> Result<(Vec<u8>, KernelStats), BitcompError> {
    if data.len() < 16 {
        return Err(BitcompError("truncated header"));
    }
    let orig_len = u64::from_le_bytes(data[0..8].try_into().unwrap()) as usize;
    let block = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
    let nblocks = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
    // See the sibling codec: only the encoder's fixed block size is
    // valid, or a corrupt header can demand an absurd allocation.
    if block != BLOCK || nblocks != orig_len.div_ceil(block) {
        return Err(BitcompError("inconsistent block geometry"));
    }
    let table_end = 16 + nblocks * 8;
    if data.len() < table_end {
        return Err(BitcompError("truncated offset table"));
    }
    let offsets: Vec<usize> = (0..nblocks)
        .map(|i| u64::from_le_bytes(data[16 + i * 8..24 + i * 8].try_into().unwrap()) as usize)
        .collect();
    let payload = &data[table_end..];
    if offsets.windows(2).any(|w| w[0] > w[1]) || offsets.last().is_some_and(|&o| o > payload.len())
    {
        return Err(BitcompError("bad offset table"));
    }
    let mut out = vec![0u8; orig_len];
    if nblocks == 0 {
        return Ok((out, KernelStats::default()));
    }
    let failed: BlockSlots<BitcompError> = BlockSlots::new(nblocks);
    let stats = {
        let src = GlobalRead::new(payload);
        let dst = GlobalWrite::new(&mut out);
        launch_named(device, Grid::linear(nblocks as u32, 256), "lzss-decode", |ctx| {
            let b = ctx.block_linear() as usize;
            let start = offsets[b];
            let end = if b + 1 < nblocks { offsets[b + 1] } else { payload.len() };
            if start >= end {
                failed.put(b, BitcompError("empty block"));
                return;
            }
            let mut buf = ctx.scratch(end - start, 0u8);
            ctx.read_span(&src, start, &mut buf);
            let expect = block.min(orig_len - b * block);
            let decoded = match buf[0] {
                0 => {
                    if buf.len() - 1 != expect {
                        failed.put(b, BitcompError("raw block size mismatch"));
                        return;
                    }
                    buf[1..].to_vec()
                }
                1 => match decode_block(&buf[1..], expect) {
                    Ok(d) => d,
                    Err(e) => {
                        failed.put(b, e);
                        return;
                    }
                },
                _ => {
                    failed.put(b, BitcompError("unknown block mode"));
                    return;
                }
            };
            ctx.add_flops(decoded.len() as u64);
            ctx.write_span(&dst, b * block, &decoded);
        })
    };
    if let Some(e) = failed.into_first() {
        return Err(e);
    }
    Ok((out, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> usize {
        let (arc, _) = compress(data, &A100);
        let (back, _) = decompress(&arc, &A100).unwrap();
        assert_eq!(back, data);
        arc.len()
    }

    #[test]
    fn repeated_patterns_compress() {
        let data: Vec<u8> = b"abcabcabcabc".iter().cycle().take(40_000).copied().collect();
        let n = roundtrip(&data);
        assert!(n < data.len() / 3, "{n} vs {}", data.len());
    }

    #[test]
    fn zero_runs_compress_but_less_than_rle() {
        let data = vec![0u8; 1 << 16];
        let lz = roundtrip(&data);
        let (bc, _) = crate::compress(&data, &A100);
        assert!(lz < data.len() / 4);
        // The zero-run-aware Bitcomp substitute beats generic LZSS here —
        // the § VI-B trade the paper describes.
        assert!(bc.len() < lz, "bitcomp {} !< lzss {lz}", bc.len());
    }

    #[test]
    fn incompressible_bounded_expansion() {
        let data: Vec<u8> = (0..50_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 29) as u8)
            .collect();
        let n = roundtrip(&data);
        assert!(n < data.len() + data.len() / 50 + 64);
    }

    #[test]
    fn odd_sizes_roundtrip() {
        for len in [0usize, 1, 2, 3, 4095, 4096, 4097, 9000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 11) as u8).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn corrupt_archives_error() {
        let data = vec![7u8; 20_000];
        let (arc, _) = compress(&data, &A100);
        assert!(decompress(&arc[..8], &A100).is_err());
        let mut bad = arc.clone();
        bad.truncate(arc.len() - 10);
        let _ = decompress(&bad, &A100); // error or wrong content, no panic
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..12_000)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_roundtrip_structured(
            pat in proptest::collection::vec(any::<u8>(), 1..40),
            reps in 1usize..400,
        ) {
            let data: Vec<u8> = pat.iter().cycle().take(pat.len() * reps).copied().collect();
            roundtrip(&data);
        }
    }
}
