//! A block-parallel lossless byte codec standing in for NVIDIA
//! **Bitcomp-lossless** (§ VI-B).
//!
//! The paper appends Bitcomp — a proprietary, performance-oriented GPU
//! encoder — after Huffman coding to cancel the remaining redundancy:
//! with G-Interp's centralized quant-codes the dominant symbol gets a
//! 1-bit Huffman code, so the encoded stream is mostly long runs of
//! `0x00` bytes, and Huffman alone cannot go below 1 bit per element.
//!
//! This substitute keeps the properties that matter for reproduction:
//!
//! * **GPU-shaped**: fixed 4 KiB blocks, each independently encoded and
//!   decodable, two-pass size/offset-then-emit, written as `gpu-sim`
//!   kernels so Fig. 9's "negligible overhead" claim is measured.
//! * **Run/repetition canceling**: per block, the better of a
//!   zero-run RLE and a word-delta bit-packing is chosen (raw
//!   fallback guarantees bounded expansion), which removes exactly the
//!   `0x00`-run redundancy the paper exploits.
//!
//! Format: `[u64 original len][u32 block size][u32 nblocks]`,
//! `[u64 offset per block]`, then per-block payloads of
//! `[u8 mode][body]`.

use cuszi_gpu_sim::{launch_named, BlockSlots, DeviceSpec, GlobalRead, GlobalWrite, Grid, KernelStats};

pub mod lzss;

/// Encoded-block mode tags.
const MODE_RAW: u8 = 0;
const MODE_RLE0: u8 = 1;
const MODE_DELTA_BP: u8 = 2;

/// Block granularity (4 KiB, Bitcomp's documented default).
pub const BLOCK: usize = 4096;

/// Decode failure (corrupt or truncated archive).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BitcompError(pub &'static str);

impl std::fmt::Display for BitcompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bitcomp decode error: {}", self.0)
    }
}

impl std::error::Error for BitcompError {}

/// Encode one block body with the zero-run RLE.
///
/// Token stream: control byte `0xxxxxxx` = run of `x+1` zero bytes;
/// `1xxxxxxx` = `x+1` literal bytes follow.
fn rle0_encode(src: &[u8], out: &mut Vec<u8>) {
    let mut i = 0;
    while i < src.len() {
        if src[i] == 0 {
            let mut run = 1;
            while i + run < src.len() && src[i + run] == 0 && run < 128 {
                run += 1;
            }
            out.push((run - 1) as u8);
            i += run;
        } else {
            let mut lit = 1;
            while i + lit < src.len() && src[i + lit] != 0 && lit < 128 {
                lit += 1;
            }
            out.push(0x80 | (lit - 1) as u8);
            out.extend_from_slice(&src[i..i + lit]);
            i += lit;
        }
    }
}

fn rle0_decode(src: &[u8], expect: usize) -> Result<Vec<u8>, BitcompError> {
    let mut out = Vec::with_capacity(expect);
    let mut i = 0;
    while i < src.len() {
        let ctrl = src[i];
        i += 1;
        let n = (ctrl & 0x7f) as usize + 1;
        if ctrl & 0x80 == 0 {
            out.resize(out.len() + n, 0);
        } else {
            if i + n > src.len() {
                return Err(BitcompError("literal run past end of block"));
            }
            out.extend_from_slice(&src[i..i + n]);
            i += n;
        }
        if out.len() > expect {
            return Err(BitcompError("block inflates past declared size"));
        }
    }
    if out.len() != expect {
        return Err(BitcompError("block decodes to wrong size"));
    }
    Ok(out)
}

#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Words per width group of the delta coder. Per-group widths keep one
/// large delta from inflating the whole block (Bitcomp's grouped-packing
/// behaviour).
const DELTA_GROUP: usize = 32;

/// Delta + grouped fixed-width bit-packing over little-endian u32 words.
///
/// Body: `[u8 tail_len][tail bytes][u32 first]`, then per group of up to
/// [`DELTA_GROUP`] deltas: `[u8 width][packed zigzag deltas]`.
fn delta_bp_encode(src: &[u8], out: &mut Vec<u8>) {
    let words: Vec<u32> = src
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
        .collect();
    let tail = &src[words.len() * 4..];
    let deltas: Vec<u64> = words
        .windows(2)
        .map(|w| zigzag(w[1] as i64 - w[0] as i64))
        .collect();
    out.push(tail.len() as u8);
    out.extend_from_slice(tail);
    if let Some(&first) = words.first() {
        out.extend_from_slice(&first.to_le_bytes());
    }
    for group in deltas.chunks(DELTA_GROUP) {
        let width = group.iter().map(|&d| 64 - d.leading_zeros() as u8).max().unwrap_or(0);
        out.push(width);
        let mut bitbuf = 0u128;
        let mut nbits = 0u32;
        for &d in group {
            bitbuf = (bitbuf << width) | d as u128;
            nbits += width as u32;
            while nbits >= 8 {
                out.push((bitbuf >> (nbits - 8)) as u8);
                nbits -= 8;
            }
        }
        if nbits > 0 {
            out.push((bitbuf << (8 - nbits)) as u8);
        }
    }
}

fn delta_bp_decode(src: &[u8], expect: usize) -> Result<Vec<u8>, BitcompError> {
    if src.is_empty() {
        return Err(BitcompError("delta block too short"));
    }
    let tail_len = src[0] as usize;
    if expect < tail_len || !(expect - tail_len).is_multiple_of(4) {
        return Err(BitcompError("delta block size misaligned"));
    }
    let nwords = (expect - tail_len) / 4;
    let mut pos = 1;
    if pos + tail_len > src.len() {
        return Err(BitcompError("delta tail truncated"));
    }
    let tail = src[pos..pos + tail_len].to_vec();
    pos += tail_len;
    let mut words = Vec::with_capacity(nwords);
    if nwords > 0 {
        if pos + 4 > src.len() {
            return Err(BitcompError("delta first word truncated"));
        }
        let first = u32::from_le_bytes(src[pos..pos + 4].try_into().unwrap());
        pos += 4;
        words.push(first);
        let mut prev = first as i64;
        let mut remaining = nwords - 1;
        while remaining > 0 {
            if pos >= src.len() {
                return Err(BitcompError("delta group header truncated"));
            }
            let width = src[pos] as usize;
            pos += 1;
            if width > 33 {
                return Err(BitcompError("delta width out of range"));
            }
            let n = remaining.min(DELTA_GROUP);
            let nbytes = (n * width).div_ceil(8);
            if pos + nbytes > src.len() {
                return Err(BitcompError("delta payload truncated"));
            }
            let payload = &src[pos..pos + nbytes];
            let mut bitpos = 0usize;
            for _ in 0..n {
                let mut v = 0u64;
                for _ in 0..width {
                    let bit = (payload[bitpos / 8] >> (7 - bitpos % 8)) & 1;
                    v = (v << 1) | bit as u64;
                    bitpos += 1;
                }
                let cur = prev + unzigzag(v);
                if !(0..=u32::MAX as i64).contains(&cur) {
                    return Err(BitcompError("delta reconstruction overflow"));
                }
                words.push(cur as u32);
                prev = cur;
            }
            pos += nbytes;
            remaining -= n;
        }
    }
    let mut out = Vec::with_capacity(expect);
    for w in words {
        out.extend_from_slice(&w.to_le_bytes());
    }
    out.extend_from_slice(&tail);
    Ok(out)
}

/// Encode one block: best of RLE0 / delta-bitpack / raw.
fn encode_block(src: &[u8]) -> Vec<u8> {
    let mut rle = Vec::with_capacity(src.len() + 8);
    rle0_encode(src, &mut rle);
    let mut dbp = Vec::with_capacity(src.len() + 8);
    delta_bp_encode(src, &mut dbp);
    let mut best = if rle.len() <= dbp.len() { (MODE_RLE0, rle) } else { (MODE_DELTA_BP, dbp) };
    if best.1.len() >= src.len() {
        best = (MODE_RAW, src.to_vec());
    }
    let mut out = Vec::with_capacity(best.1.len() + 1);
    out.push(best.0);
    out.extend_from_slice(&best.1);
    out
}

fn decode_block(src: &[u8], expect: usize) -> Result<Vec<u8>, BitcompError> {
    let (&mode, body) = src.split_first().ok_or(BitcompError("empty block"))?;
    match mode {
        MODE_RAW => {
            if body.len() != expect {
                return Err(BitcompError("raw block size mismatch"));
            }
            Ok(body.to_vec())
        }
        MODE_RLE0 => rle0_decode(body, expect),
        MODE_DELTA_BP => delta_bp_decode(body, expect),
        _ => Err(BitcompError("unknown block mode")),
    }
}

/// Compress a byte stream. Returns the archive and kernel stats (two
/// passes: size, then emit).
///
/// ```
/// use cuszi_gpu_sim::A100;
/// let data = vec![0u8; 100_000]; // the post-Huffman zero-run case
/// let (packed, _) = cuszi_bitcomp::compress(&data, &A100);
/// assert!(packed.len() < data.len() / 20);
/// let (back, _) = cuszi_bitcomp::decompress(&packed, &A100).unwrap();
/// assert_eq!(back, data);
/// ```
pub fn compress(data: &[u8], device: &DeviceSpec) -> (Vec<u8>, Vec<KernelStats>) {
    let nblocks = data.len().div_ceil(BLOCK);
    let mut stats = Vec::new();

    // Pass 1: encode into per-block scratch, collecting sizes. (The CUDA
    // original sizes blocks with an upper bound then compacts; we keep
    // the two-pass structure and bill the traffic of both.)
    let blocks: BlockSlots<Vec<u8>> = BlockSlots::new(nblocks);
    if nblocks > 0 {
        let src = GlobalRead::new(data);
        stats.push(launch_named(device, Grid::linear(nblocks as u32, 256), "bitcomp-encode", |ctx| {
            let b = ctx.block_linear() as usize;
            let start = b * BLOCK;
            let end = (start + BLOCK).min(data.len());
            let mut buf = ctx.scratch(end - start, 0u8);
            ctx.read_span(&src, start, &mut buf);
            ctx.add_flops(buf.len() as u64);
            blocks.put(b, encode_block(&buf));
        }));
    }
    let blocks = blocks.into_compact();

    // Header + offset table.
    let mut out = Vec::new();
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    out.extend_from_slice(&(BLOCK as u32).to_le_bytes());
    out.extend_from_slice(&(nblocks as u32).to_le_bytes());
    let mut off = 0u64;
    for blk in &blocks {
        out.extend_from_slice(&off.to_le_bytes());
        off += blk.len() as u64;
    }
    let payload_base = out.len();
    let total: usize = blocks.iter().map(|b| b.len()).sum();
    out.resize(payload_base + total, 0);

    // Pass 2: emit payloads (block-parallel coalesced stores).
    if nblocks > 0 {
        let offsets: Vec<usize> = {
            let mut v = Vec::with_capacity(nblocks);
            let mut acc = 0usize;
            for blk in &blocks {
                v.push(acc);
                acc += blk.len();
            }
            v
        };
        let dst = GlobalWrite::new(&mut out[payload_base..]);
        stats.push(launch_named(device, Grid::linear(nblocks as u32, 256), "bitcomp-emit", |ctx| {
            let b = ctx.block_linear() as usize;
            ctx.write_span(&dst, offsets[b], &blocks[b]);
        }));
    }
    (out, stats)
}

/// Decompress a [`compress`] archive.
pub fn decompress(data: &[u8], device: &DeviceSpec) -> Result<(Vec<u8>, KernelStats), BitcompError> {
    if data.len() < 16 {
        return Err(BitcompError("truncated header"));
    }
    let orig_len = u64::from_le_bytes(data[0..8].try_into().unwrap()) as usize;
    let block = u32::from_le_bytes(data[8..12].try_into().unwrap()) as usize;
    let nblocks = u32::from_le_bytes(data[12..16].try_into().unwrap()) as usize;
    // The encoder always writes BLOCK; accepting arbitrary block sizes
    // would let a corrupt header claim a near-arbitrary `orig_len` and
    // drive the output allocation below before any payload check.
    if block != BLOCK || nblocks != orig_len.div_ceil(block) {
        return Err(BitcompError("inconsistent block geometry"));
    }
    let table_end = 16 + nblocks * 8;
    if data.len() < table_end {
        return Err(BitcompError("truncated offset table"));
    }
    let offsets: Vec<usize> = (0..nblocks)
        .map(|i| u64::from_le_bytes(data[16 + i * 8..24 + i * 8].try_into().unwrap()) as usize)
        .collect();
    let payload = &data[table_end..];
    if offsets.windows(2).any(|w| w[0] > w[1]) || offsets.first().is_some_and(|&o| o != 0) {
        return Err(BitcompError("non-monotone offsets"));
    }
    if offsets.last().is_some_and(|&o| o > payload.len()) {
        return Err(BitcompError("offsets past payload"));
    }

    let mut out = vec![0u8; orig_len];
    if nblocks == 0 {
        return Ok((out, KernelStats::default()));
    }
    let failed: BlockSlots<BitcompError> = BlockSlots::new(nblocks);
    let stats = {
        let src = GlobalRead::new(payload);
        let dst = GlobalWrite::new(&mut out);
        launch_named(device, Grid::linear(nblocks as u32, 256), "bitcomp-decode", |ctx| {
            let b = ctx.block_linear() as usize;
            let start = offsets[b];
            let end = if b + 1 < nblocks { offsets[b + 1] } else { payload.len() };
            let expect = block.min(orig_len - b * block);
            let mut buf = ctx.scratch(end - start, 0u8);
            ctx.read_span(&src, start, &mut buf);
            match decode_block(&buf, expect) {
                Ok(decoded) => {
                    ctx.add_flops(decoded.len() as u64);
                    ctx.write_span(&dst, b * block, &decoded);
                }
                Err(e) => failed.put(b, e),
            }
        })
    };
    if let Some(e) = failed.into_first() {
        return Err(e);
    }
    Ok((out, stats))
}

/// Convenience: archive size for a given input (for ratio bookkeeping).
pub fn compressed_len(data: &[u8], device: &DeviceSpec) -> usize {
    compress(data, device).0.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::A100;
    use proptest::prelude::*;

    fn roundtrip(data: &[u8]) -> usize {
        let (arc, _) = compress(data, &A100);
        let (back, _) = decompress(&arc, &A100).unwrap();
        assert_eq!(back, data);
        arc.len()
    }

    #[test]
    fn empty_input() {
        assert!(roundtrip(&[]) >= 16);
    }

    #[test]
    fn all_zeros_compress_massively() {
        let data = vec![0u8; 1 << 20];
        let n = roundtrip(&data);
        assert!(n < data.len() / 20, "zeros: {n} bytes for {} input", data.len());
    }

    #[test]
    fn huffman_like_stream_with_zero_runs() {
        // Mostly 0x00 with sparse set bits — the exact post-Huffman
        // pattern § VI-B targets.
        let data: Vec<u8> =
            (0..1 << 18).map(|i| if i % 97 == 0 { 0x41 } else { 0 }).collect();
        let n = roundtrip(&data);
        assert!(n < data.len() / 8, "{n} vs {}", data.len());
    }

    #[test]
    fn incompressible_data_bounded_expansion() {
        let data: Vec<u8> = (0..100_000u64)
            .map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8)
            .collect();
        let n = roundtrip(&data);
        // Raw fallback: 1 mode byte per 4 KiB + header/table.
        assert!(n < data.len() + data.len() / 100 + 64);
    }

    #[test]
    fn slowly_varying_words_pick_delta_mode() {
        let mut data = Vec::new();
        for i in 0..4096u32 {
            data.extend_from_slice(&(1_000_000 + i * 3).to_le_bytes());
        }
        let n = roundtrip(&data);
        assert!(n < data.len() / 3, "delta mode should win: {n} vs {}", data.len());
    }

    #[test]
    fn non_multiple_of_block_sizes() {
        for len in [1usize, 17, 4095, 4096, 4097, 10_000] {
            let data: Vec<u8> = (0..len).map(|i| (i % 7) as u8 * 11).collect();
            roundtrip(&data);
        }
    }

    #[test]
    fn corrupt_archives_error_not_panic() {
        let data = vec![7u8; 10_000];
        let (arc, _) = compress(&data, &A100);
        assert!(decompress(&arc[..10], &A100).is_err());
        let mut bad = arc.clone();
        bad[20] = 0xFF; // clobber offset table
        let _ = decompress(&bad, &A100); // must not panic
        let mut bad2 = arc.clone();
        let last = bad2.len() - 1;
        bad2.truncate(last);
        let _ = decompress(&bad2, &A100);
        // Unknown mode byte.
        let payload_base = 16 + ((data.len().div_ceil(BLOCK)) * 8);
        let mut bad3 = arc;
        bad3[payload_base] = 99;
        assert!(decompress(&bad3, &A100).is_err());
    }

    #[test]
    fn zigzag_roundtrip() {
        for v in [0i64, 1, -1, i32::MAX as i64, i32::MIN as i64, -123456] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
            roundtrip(&data);
        }

        #[test]
        fn prop_roundtrip_sparse(data in proptest::collection::vec(prop_oneof![9 => Just(0u8), 1 => any::<u8>()], 0..20_000)) {
            roundtrip(&data);
        }
    }
}
