//! Prequantization ("dual-quant"), the trick cuSZ introduced to make the
//! Lorenzo predictor fully parallel.
//!
//! Instead of quantizing *prediction errors* (which chains each element's
//! reconstruction into its neighbours' predictions), the input is first
//! rounded onto the uniform lattice `r_i = round(x_i / 2e)`. Prediction
//! then runs on the integers, where the Lorenzo delta is exact and every
//! element is independent — the property the cuSZ / cuSZp / FZ-GPU
//! kernels exploit. Reconstruction is `x' = r_i * 2e`, with
//! `|x - x'| <= e` by construction.

/// Round a field onto the `2*eb` lattice. Values whose lattice index
/// overflows `i32` are clamped (matching the CUDA originals, which cast
/// through 32-bit integers); such extreme ratios only occur with
/// pathological bounds and are caught by the range checks upstream.
///
/// Rejects non-positive/non-finite bounds and non-finite values with a
/// typed error *before* any kernel consumes the lattice — a NaN would
/// otherwise silently round to 0 and decompress to garbage.
pub fn prequantize(data: &[f32], eb: f64) -> Result<Vec<i32>, crate::QuantError> {
    if !(eb.is_finite() && eb > 0.0) {
        return Err(crate::QuantError::InvalidErrorBound);
    }
    let inv = 1.0 / (2.0 * eb);
    let mut out = Vec::with_capacity(data.len());
    for &v in data {
        if !v.is_finite() {
            return Err(crate::QuantError::NonFiniteInput);
        }
        let r = (v as f64 * inv).round();
        out.push(r.clamp(i32::MIN as f64, i32::MAX as f64) as i32);
    }
    Ok(out)
}

/// Invert [`prequantize`].
pub fn prequant_reconstruct(codes: &[i32], eb: f64) -> Vec<f32> {
    let step = 2.0 * eb;
    codes.iter().map(|&r| (r as f64 * step) as f32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn invalid_bounds_are_typed_errors() {
        for eb in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert_eq!(
                prequantize(&[1.0, 2.0], eb),
                Err(crate::QuantError::InvalidErrorBound),
                "eb={eb}"
            );
        }
    }

    #[test]
    fn non_finite_values_are_typed_errors() {
        for bad in [f32::NAN, f32::INFINITY, f32::NEG_INFINITY] {
            assert_eq!(
                prequantize(&[0.0, bad, 1.0], 0.1),
                Err(crate::QuantError::NonFiniteInput),
                "v={bad}"
            );
        }
    }

    #[test]
    fn roundtrip_is_error_bounded() {
        let data: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.7).sin() * 10.0).collect();
        let eb = 1e-3;
        let codes = prequantize(&data, eb).expect("valid input");
        let recon = prequant_reconstruct(&codes, eb);
        for (o, r) in data.iter().zip(&recon) {
            assert!((o - r).abs() as f64 <= eb * (1.0 + 1e-9));
        }
    }

    #[test]
    fn lattice_rounding_is_symmetric() {
        let codes = prequantize(&[0.09, -0.09, 0.11, -0.11], 0.05).expect("valid input");
        assert_eq!(codes, vec![1, -1, 1, -1]);
    }

    #[test]
    fn extreme_ratio_clamps_instead_of_wrapping() {
        let codes = prequantize(&[1e30, -1e30], 1e-10).expect("valid input");
        assert_eq!(codes, vec![i32::MAX, i32::MIN]);
    }

    proptest! {
        #[test]
        fn prop_prequant_error_bounded(v in -1e6f32..1e6f32, eb in 1e-4f64..10.0) {
            // The dual-quant lattice is i32 (as in the CUDA originals):
            // the bound holds whenever |v| / 2eb is representable; beyond
            // that the clamp applies (covered by
            // `extreme_ratio_clamps_instead_of_wrapping`).
            prop_assume!((v.abs() as f64) / (2.0 * eb) < i32::MAX as f64);
            let recon = prequant_reconstruct(&prequantize(&[v], eb).expect("valid input"), eb);
            // The final cast to f32 can add up to one ulp of |v| on top
            // of the quantization error.
            let tol = eb * (1.0 + 1e-6) + (v.abs() as f64) * f64::from(f32::EPSILON);
            prop_assert!(((v - recon[0]).abs() as f64) <= tol);
        }
    }
}
