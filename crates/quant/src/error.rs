//! Typed errors for quantization inputs.

/// Invalid input to a quantization entry point. Mapped into the
/// workspace-level `CuszError` at the core API boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QuantError {
    /// The error bound is non-positive or non-finite.
    InvalidErrorBound,
    /// The input contains NaN or infinities — error-bounded
    /// quantization of non-finite values is undefined in the SZ
    /// framework.
    NonFiniteInput,
}

impl std::fmt::Display for QuantError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QuantError::InvalidErrorBound => {
                write!(f, "error bound must be positive and finite")
            }
            QuantError::NonFiniteInput => write!(f, "input contains non-finite values"),
        }
    }
}

impl std::error::Error for QuantError {}
