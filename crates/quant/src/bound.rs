//! Error-bound modes.

/// A user-specified error bound, in one of the two modes the paper's
/// evaluation uses.
///
/// The paper's Table III error bounds (1e-2, 1e-3, 1e-4) are
/// *value-range-based relative* bounds: the absolute bound is
/// `epsilon * (max - min)` (§ V-C.1).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ErrorBound {
    /// Absolute bound: `|x - x'| <= e`.
    Abs(f64),
    /// Value-range-relative bound: `|x - x'| <= epsilon * range(x)`.
    Rel(f64),
}

impl ErrorBound {
    /// Resolve to an absolute bound given the field's value range.
    ///
    /// A relative bound on a constant field (range 0) resolves to 0,
    /// which the quantizer rejects — callers special-case constant
    /// fields before quantization.
    pub fn absolute(&self, value_range: f64) -> f64 {
        match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::Rel(eps) => eps * value_range,
        }
    }

    /// The value-range-relative magnitude (used by the auto-tuner's
    /// Eq. 1, which is a function of the *relative* bound).
    pub fn relative(&self, value_range: f64) -> f64 {
        match *self {
            ErrorBound::Abs(e) => {
                if value_range > 0.0 {
                    e / value_range
                } else {
                    0.0
                }
            }
            ErrorBound::Rel(eps) => eps,
        }
    }

    /// Whether the bound is positive and finite (a usable bound).
    pub fn is_valid(&self) -> bool {
        let v = match *self {
            ErrorBound::Abs(e) => e,
            ErrorBound::Rel(e) => e,
        };
        v.is_finite() && v > 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_ignores_range() {
        assert_eq!(ErrorBound::Abs(0.5).absolute(100.0), 0.5);
    }

    #[test]
    fn rel_scales_with_range() {
        assert_eq!(ErrorBound::Rel(1e-3).absolute(200.0), 0.2);
    }

    #[test]
    fn relative_inverts_absolute() {
        let e = ErrorBound::Abs(0.5);
        assert_eq!(e.relative(100.0), 5e-3);
        assert_eq!(e.relative(0.0), 0.0);
        assert_eq!(ErrorBound::Rel(1e-2).relative(123.0), 1e-2);
    }

    #[test]
    fn validity() {
        assert!(ErrorBound::Abs(1e-6).is_valid());
        assert!(!ErrorBound::Abs(0.0).is_valid());
        assert!(!ErrorBound::Rel(-1.0).is_valid());
        assert!(!ErrorBound::Abs(f64::NAN).is_valid());
        assert!(!ErrorBound::Rel(f64::INFINITY).is_valid());
    }
}
