//! Outlier stream compaction (paper § VI-A: "we gather them as outliers
//! and losslessly store them with trivial space and time costs using the
//! stream compaction technique").

/// Compacted `(index, exact value)` pairs for out-of-band elements.
///
/// Indices are stored in ascending order when produced by a forward
/// sweep; [`Outliers::scatter_into`] does not require ordering.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Outliers {
    indices: Vec<u64>,
    values: Vec<f32>,
}

impl Outliers {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty store with reserved capacity.
    pub fn with_capacity(n: usize) -> Self {
        Outliers { indices: Vec::with_capacity(n), values: Vec::with_capacity(n) }
    }

    /// Record one outlier.
    #[inline]
    pub fn push(&mut self, index: u64, value: f32) {
        self.indices.push(index);
        self.values.push(value);
    }

    /// Number of outliers.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// The compacted indices.
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// The compacted exact values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Scatter the exact values back into a reconstruction buffer.
    ///
    /// Returns `false` (without writing anything further) if any index is
    /// out of bounds — a corrupt-archive symptom the caller turns into a
    /// typed error.
    #[must_use]
    pub fn scatter_into(&self, out: &mut [f32]) -> bool {
        if self.indices.iter().any(|&i| i as usize >= out.len()) {
            return false;
        }
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        true
    }

    /// Merge per-chunk outlier stores produced by parallel sweeps into a
    /// single store (chunks must be pushed in index order for the result
    /// to be ordered, as with GPU stream compaction over a prefix sum).
    pub fn concat(parts: Vec<Outliers>) -> Outliers {
        let n = parts.iter().map(Outliers::len).sum();
        let mut out = Outliers::with_capacity(n);
        for p in parts {
            out.indices.extend_from_slice(&p.indices);
            out.values.extend_from_slice(&p.values);
        }
        out
    }

    /// Rebuild from parallel index/value slices (deserialisation).
    ///
    /// Returns `None` if the slice lengths disagree.
    pub fn from_parts(indices: Vec<u64>, values: Vec<f32>) -> Option<Outliers> {
        if indices.len() != values.len() {
            return None;
        }
        Some(Outliers { indices, values })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_scatter() {
        let mut o = Outliers::new();
        o.push(1, 10.0);
        o.push(3, 30.0);
        let mut buf = [0.0f32; 4];
        assert!(o.scatter_into(&mut buf));
        assert_eq!(buf, [0.0, 10.0, 0.0, 30.0]);
    }

    #[test]
    fn out_of_bounds_index_is_reported() {
        let mut o = Outliers::new();
        o.push(10, 1.0);
        let mut buf = [0.0f32; 4];
        assert!(!o.scatter_into(&mut buf));
    }

    #[test]
    fn concat_preserves_order() {
        let mut a = Outliers::new();
        a.push(0, 1.0);
        let mut b = Outliers::new();
        b.push(5, 2.0);
        b.push(7, 3.0);
        let m = Outliers::concat(vec![a, b]);
        assert_eq!(m.len(), 3);
        assert_eq!(m.indices(), &[0, 5, 7]);
        assert_eq!(m.values(), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn from_parts_validates_lengths() {
        assert!(Outliers::from_parts(vec![1], vec![1.0]).is_some());
        assert!(Outliers::from_parts(vec![1, 2], vec![1.0]).is_none());
    }
}
