//! The per-element quantizer.

/// Quant-code reserved for outliers (paper § III-A: codes with
/// `|q| >= R` are "too big for efficient encoding" and compacted aside).
pub const OUTLIER_CODE: u16 = 0;

/// Result of quantizing one element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantized {
    /// Biased quant-code: `q + radius`, in `1..2*radius`; `0` = outlier.
    pub code: u16,
    /// The error-bounded reconstruction the decompressor will produce
    /// (for outliers, the exact original value).
    pub recon: f32,
}

/// Two-sided linear-scale quantizer with outlier thresholding.
///
/// ```
/// use cuszi_quant::Quantizer;
/// let q = Quantizer::new(0.05, 512).unwrap();
/// let r = q.quantize(1.03, 1.0);          // prediction was 1.0
/// assert!((1.03 - r.recon).abs() <= 0.05); // error-bounded
/// assert_eq!(q.reconstruct(1.0, r.code), r.recon); // replayable
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    eb: f64,
    twice_eb: f64,
    /// Precomputed `1 / twice_eb`: the quantize hot loop multiplies
    /// instead of dividing (f64 division dominates the per-element cost
    /// otherwise). Any sub-ulp difference vs division is caught by the
    /// explicit bound re-check in [`Quantizer::quantize`].
    inv_twice_eb: f64,
    radius: i32,
}

impl Quantizer {
    /// `eb` is the absolute error bound (must be positive and finite);
    /// `radius` is the paper's `R` (codebook holds `2*radius` symbols).
    /// cuSZ's default — and ours — is `R = 512`.
    ///
    /// A non-positive/non-finite bound or a zero radius is a typed
    /// error, not a panic — both are reachable from hostile inputs via
    /// the public API, so the whole chain stays `Result`-shaped.
    pub fn new(eb: f64, radius: u16) -> Result<Self, crate::QuantError> {
        if !(eb.is_finite() && eb > 0.0) {
            return Err(crate::QuantError::InvalidErrorBound);
        }
        if radius < 1 {
            // A zero radius leaves no representable codes at all; fold
            // it into the bound error (the two travel together in every
            // caller's validation).
            return Err(crate::QuantError::InvalidErrorBound);
        }
        Ok(Quantizer {
            eb,
            twice_eb: 2.0 * eb,
            inv_twice_eb: 1.0 / (2.0 * eb),
            radius: radius as i32,
        })
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// The outlier threshold `R`.
    pub fn radius(&self) -> u16 {
        self.radius as u16
    }

    /// Number of distinct codes (`2R`), i.e. the Huffman alphabet size.
    pub fn alphabet_size(&self) -> usize {
        2 * self.radius as usize
    }

    /// Quantize `value` against prediction `pred`.
    #[inline]
    pub fn quantize(&self, value: f32, pred: f32) -> Quantized {
        let err = value as f64 - pred as f64;
        let q = (err * self.inv_twice_eb).round();
        // Out-of-band (or numerically degenerate) errors become outliers,
        // stored exactly. The negated comparison is deliberate: it must
        // catch NaN (from a NaN prediction), which `>=` would not.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(q.abs() < self.radius as f64) {
            return Quantized { code: OUTLIER_CODE, recon: value };
        }
        let qi = q as i32;
        let recon = (pred as f64 + qi as f64 * self.twice_eb) as f32;
        // Guard against f32 rounding pushing the reconstruction outside
        // the bound for values near the f32 precision limit.
        if ((value as f64) - (recon as f64)).abs() > self.eb {
            return Quantized { code: OUTLIER_CODE, recon: value };
        }
        Quantized { code: (qi + self.radius) as u16, recon }
    }

    /// Replay the reconstruction from a non-outlier code (decompression).
    #[inline]
    pub fn reconstruct(&self, pred: f32, code: u16) -> f32 {
        debug_assert_ne!(code, OUTLIER_CODE, "outlier codes are reconstructed from the side channel");
        let q = code as i32 - self.radius;
        (pred as f64 + q as f64 * self.twice_eb) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_error_maps_to_radius() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        let r = q.quantize(1.0, 1.0);
        assert_eq!(r.code, 512);
        assert_eq!(r.recon, 1.0);
    }

    #[test]
    fn small_errors_round_to_nearest_code() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        // err = 0.25 => q = round(0.25/0.2) = 1
        let r = q.quantize(1.25, 1.0);
        assert_eq!(r.code, 513);
        assert!((r.recon - 1.2).abs() < 1e-6);
        // err = -0.31 => q = round(-1.55) = -2
        let r = q.quantize(0.69, 1.0);
        assert_eq!(r.code, 510);
    }

    #[test]
    fn reconstruction_matches_quantization() {
        let q = Quantizer::new(0.01, 512).expect("valid parameters");
        let r = q.quantize(3.456, 3.4);
        assert_eq!(q.reconstruct(3.4, r.code), r.recon);
    }

    #[test]
    fn error_is_bounded_for_in_range_codes() {
        let q = Quantizer::new(0.05, 512).expect("valid parameters");
        for i in 0..1000 {
            let v = (i as f32) * 0.013 - 5.0;
            let p = v + ((i % 17) as f32 - 8.0) * 0.01;
            let r = q.quantize(v, p);
            assert!((v - r.recon).abs() <= 0.05 + 1e-9, "i={i} v={v} recon={}", r.recon);
        }
    }

    #[test]
    fn large_errors_become_outliers() {
        let q = Quantizer::new(0.001, 512).expect("valid parameters");
        let r = q.quantize(100.0, 0.0);
        assert_eq!(r.code, OUTLIER_CODE);
        assert_eq!(r.recon, 100.0); // exact
    }

    #[test]
    fn nan_prediction_becomes_outlier_not_panic() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        let r = q.quantize(1.0, f32::NAN);
        assert_eq!(r.code, OUTLIER_CODE);
        assert_eq!(r.recon, 1.0);
    }

    #[test]
    fn alphabet_size_is_two_radius() {
        assert_eq!(Quantizer::new(1.0, 512).expect("valid").alphabet_size(), 1024);
        assert_eq!(Quantizer::new(1.0, 1).expect("valid").alphabet_size(), 2);
    }

    #[test]
    fn invalid_parameters_rejected_with_typed_errors() {
        for eb in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert_eq!(Quantizer::new(eb, 512).unwrap_err(), crate::QuantError::InvalidErrorBound);
        }
        assert_eq!(Quantizer::new(0.1, 0).unwrap_err(), crate::QuantError::InvalidErrorBound);
    }

    #[test]
    fn boundary_code_just_inside_radius() {
        let q = Quantizer::new(0.5, 4).expect("valid parameters"); // codes 1..8, q in -3..=3
        let r = q.quantize(3.0, 0.0); // err=3.0, q=3 -> in range
        assert_eq!(r.code, 7);
        let r = q.quantize(4.0, 0.0); // q=4 >= radius -> outlier
        assert_eq!(r.code, OUTLIER_CODE);
    }

    proptest! {
        #[test]
        fn prop_error_bounded_or_outlier_exact(
            v in -1e6f32..1e6f32,
            p in -1e6f32..1e6f32,
            eb in 1e-6f64..1e3f64,
        ) {
            let q = Quantizer::new(eb, 512).expect("valid parameters");
            let r = q.quantize(v, p);
            if r.code == OUTLIER_CODE {
                prop_assert_eq!(r.recon, v);
            } else {
                prop_assert!(((v as f64) - (r.recon as f64)).abs() <= eb);
                prop_assert_eq!(q.reconstruct(p, r.code), r.recon);
            }
        }

        #[test]
        fn prop_codes_stay_in_band(v in -100f32..100f32, p in -100f32..100f32) {
            let q = Quantizer::new(0.01, 256).expect("valid parameters");
            let r = q.quantize(v, p);
            prop_assert!((r.code as usize) < q.alphabet_size());
        }
    }
}
