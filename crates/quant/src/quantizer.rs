//! The per-element quantizer.

/// Quant-code reserved for outliers (paper § III-A: codes with
/// `|q| >= R` are "too big for efficient encoding" and compacted aside).
pub const OUTLIER_CODE: u16 = 0;

/// `f64::round` (round-half-away-from-zero), expressed through
/// `round_ties_even` so it lowers to a vectorizable rounding
/// instruction instead of libm's scalar branch sequence. The two
/// roundings differ only at exact ties (fraction == 0.5), where
/// half-away is `x + copysign(0.5, x)` — exact, because a tie means
/// the 0.5 fraction is representable at `x`'s exponent. Bit-identity
/// with `f64::round` over the full domain (NaN, infinities, huge
/// values included) is pinned by a proptest below.
#[inline]
fn round_half_away(x: f64) -> f64 {
    let r = x.round_ties_even();
    // Both arms computed, selected through a bitmask (never a branch),
    // so the function stays a straight-line dependency chain and SLP
    // can vectorize callers batching eight lanes. A NaN input fails
    // the tie compare and selects `r` (= NaN), like `f64::round`.
    let adj = x + 0.5f64.copysign(x);
    let tie_mask = 0u64.wrapping_sub(((x - r).abs() == 0.5) as u64);
    f64::from_bits((adj.to_bits() & tie_mask) | (r.to_bits() & !tie_mask))
}

/// Result of quantizing one element.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Quantized {
    /// Biased quant-code: `q + radius`, in `1..2*radius`; `0` = outlier.
    pub code: u16,
    /// The error-bounded reconstruction the decompressor will produce
    /// (for outliers, the exact original value).
    pub recon: f32,
}

/// Two-sided linear-scale quantizer with outlier thresholding.
///
/// ```
/// use cuszi_quant::Quantizer;
/// let q = Quantizer::new(0.05, 512).unwrap();
/// let r = q.quantize(1.03, 1.0);          // prediction was 1.0
/// assert!((1.03 - r.recon).abs() <= 0.05); // error-bounded
/// assert_eq!(q.reconstruct(1.0, r.code), r.recon); // replayable
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Quantizer {
    eb: f64,
    twice_eb: f64,
    /// Precomputed `1 / twice_eb`: the quantize hot loop multiplies
    /// instead of dividing (f64 division dominates the per-element cost
    /// otherwise). Any sub-ulp difference vs division is caught by the
    /// explicit bound re-check in [`Quantizer::quantize`].
    inv_twice_eb: f64,
    radius: i32,
}

impl Quantizer {
    /// `eb` is the absolute error bound (must be positive and finite);
    /// `radius` is the paper's `R` (codebook holds `2*radius` symbols).
    /// cuSZ's default — and ours — is `R = 512`.
    ///
    /// A non-positive/non-finite bound or a zero radius is a typed
    /// error, not a panic — both are reachable from hostile inputs via
    /// the public API, so the whole chain stays `Result`-shaped.
    pub fn new(eb: f64, radius: u16) -> Result<Self, crate::QuantError> {
        if !(eb.is_finite() && eb > 0.0) {
            return Err(crate::QuantError::InvalidErrorBound);
        }
        if radius < 1 {
            // A zero radius leaves no representable codes at all; fold
            // it into the bound error (the two travel together in every
            // caller's validation).
            return Err(crate::QuantError::InvalidErrorBound);
        }
        Ok(Quantizer {
            eb,
            twice_eb: 2.0 * eb,
            inv_twice_eb: 1.0 / (2.0 * eb),
            radius: radius as i32,
        })
    }

    /// The absolute error bound.
    pub fn error_bound(&self) -> f64 {
        self.eb
    }

    /// The outlier threshold `R`.
    pub fn radius(&self) -> u16 {
        self.radius as u16
    }

    /// Number of distinct codes (`2R`), i.e. the Huffman alphabet size.
    pub fn alphabet_size(&self) -> usize {
        2 * self.radius as usize
    }

    /// Quantize `value` against prediction `pred`.
    #[inline]
    pub fn quantize(&self, value: f32, pred: f32) -> Quantized {
        let err = value as f64 - pred as f64;
        let q = round_half_away(err * self.inv_twice_eb);
        // Out-of-band (or numerically degenerate) errors become outliers,
        // stored exactly. The negated comparison is deliberate: it must
        // catch NaN (from a NaN prediction), which `>=` would not.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        if !(q.abs() < self.radius as f64) {
            return Quantized { code: OUTLIER_CODE, recon: value };
        }
        let qi = q as i32;
        let recon = (pred as f64 + qi as f64 * self.twice_eb) as f32;
        // Guard against f32 rounding pushing the reconstruction outside
        // the bound for values near the f32 precision limit.
        if ((value as f64) - (recon as f64)).abs() > self.eb {
            return Quantized { code: OUTLIER_CODE, recon: value };
        }
        Quantized { code: (qi + self.radius) as u16, recon }
    }

    /// Batched [`Quantizer::quantize`]: eight independent lanes of the
    /// identical expression tree, written branchlessly (select instead
    /// of early return) and struct-of-arrays (one fixed-count loop per
    /// operation) so every step auto-vectorizes. Results are
    /// bit-identical to eight scalar calls — the outlier cases,
    /// including NaN values and NaN predictions, take the same arm
    /// lane-wise (pinned by a differential proptest).
    #[inline(always)]
    pub fn quantize8(&self, values: &[f32; 8], preds: &[f32; 8]) -> ([u16; 8], [f32; 8]) {
        // Mantissa-extraction constant: adding 2^52 to an integral f64
        // in [0, 2^52) leaves that integer verbatim in the low mantissa
        // bits, so the biased code never round-trips through an
        // int-float conversion (those lower to scalar fixup sequences).
        const MAGIC: f64 = 4503599627370496.0; // 2^52
        // (`#[inline(always)]` on the function: at the default
        // `#[inline]` hint LLVM leaves this as an out-of-line call, and
        // the arrays then travel through the stack on every batch.)
        let rad = self.radius as f64;
        let mut q = [0.0f64; 8];
        for j in 0..8 {
            q[j] = round_half_away((values[j] as f64 - preds[j] as f64) * self.inv_twice_eb);
        }
        // Out-of-band lanes keep computing on a clamped code — their
        // results are masked out below, and in-band lanes are untouched
        // by the clamp. The clamped `q` is always integral, so using it
        // directly in the f64 reconstruction is exactly the scalar
        // path's `qi as f64`.
        let mut qf = [0.0f64; 8];
        for j in 0..8 {
            qf[j] = q[j].clamp(-rad, rad);
        }
        let mut rec = [0.0f32; 8];
        for j in 0..8 {
            rec[j] = (preds[j] as f64 + qf[j] * self.twice_eb) as f32;
        }
        let mut biased = [0u16; 8];
        for j in 0..8 {
            biased[j] = ((qf[j] + rad) + MAGIC).to_bits() as u16;
        }
        // `<` is false for NaN, matching the scalar path's negated
        // compare (a NaN lane's garbage `biased` bits are masked out);
        // `&`, not `&&`, keeps the lane body branch-free.
        let mut codes = [0u16; 8];
        let mut recons = [0.0f32; 8];
        for j in 0..8 {
            let ok = (q[j].abs() < rad) & (((values[j] as f64) - (rec[j] as f64)).abs() <= self.eb);
            codes[j] = if ok { biased[j] } else { OUTLIER_CODE };
            recons[j] = if ok { rec[j] } else { values[j] };
        }
        (codes, recons)
    }

    /// Replay the reconstruction from a non-outlier code (decompression).
    #[inline]
    pub fn reconstruct(&self, pred: f32, code: u16) -> f32 {
        debug_assert_ne!(code, OUTLIER_CODE, "outlier codes are reconstructed from the side channel");
        let q = code as i32 - self.radius;
        (pred as f64 + q as f64 * self.twice_eb) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_error_maps_to_radius() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        let r = q.quantize(1.0, 1.0);
        assert_eq!(r.code, 512);
        assert_eq!(r.recon, 1.0);
    }

    #[test]
    fn small_errors_round_to_nearest_code() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        // err = 0.25 => q = round(0.25/0.2) = 1
        let r = q.quantize(1.25, 1.0);
        assert_eq!(r.code, 513);
        assert!((r.recon - 1.2).abs() < 1e-6);
        // err = -0.31 => q = round(-1.55) = -2
        let r = q.quantize(0.69, 1.0);
        assert_eq!(r.code, 510);
    }

    #[test]
    fn reconstruction_matches_quantization() {
        let q = Quantizer::new(0.01, 512).expect("valid parameters");
        let r = q.quantize(3.456, 3.4);
        assert_eq!(q.reconstruct(3.4, r.code), r.recon);
    }

    #[test]
    fn error_is_bounded_for_in_range_codes() {
        let q = Quantizer::new(0.05, 512).expect("valid parameters");
        for i in 0..1000 {
            let v = (i as f32) * 0.013 - 5.0;
            let p = v + ((i % 17) as f32 - 8.0) * 0.01;
            let r = q.quantize(v, p);
            assert!((v - r.recon).abs() <= 0.05 + 1e-9, "i={i} v={v} recon={}", r.recon);
        }
    }

    #[test]
    fn large_errors_become_outliers() {
        let q = Quantizer::new(0.001, 512).expect("valid parameters");
        let r = q.quantize(100.0, 0.0);
        assert_eq!(r.code, OUTLIER_CODE);
        assert_eq!(r.recon, 100.0); // exact
    }

    #[test]
    fn nan_prediction_becomes_outlier_not_panic() {
        let q = Quantizer::new(0.1, 512).expect("valid parameters");
        let r = q.quantize(1.0, f32::NAN);
        assert_eq!(r.code, OUTLIER_CODE);
        assert_eq!(r.recon, 1.0);
    }

    #[test]
    fn alphabet_size_is_two_radius() {
        assert_eq!(Quantizer::new(1.0, 512).expect("valid").alphabet_size(), 1024);
        assert_eq!(Quantizer::new(1.0, 1).expect("valid").alphabet_size(), 2);
    }

    #[test]
    fn invalid_parameters_rejected_with_typed_errors() {
        for eb in [0.0, -0.5, f64::NAN, f64::INFINITY] {
            assert_eq!(Quantizer::new(eb, 512).unwrap_err(), crate::QuantError::InvalidErrorBound);
        }
        assert_eq!(Quantizer::new(0.1, 0).unwrap_err(), crate::QuantError::InvalidErrorBound);
    }

    #[test]
    fn boundary_code_just_inside_radius() {
        let q = Quantizer::new(0.5, 4).expect("valid parameters"); // codes 1..8, q in -3..=3
        let r = q.quantize(3.0, 0.0); // err=3.0, q=3 -> in range
        assert_eq!(r.code, 7);
        let r = q.quantize(4.0, 0.0); // q=4 >= radius -> outlier
        assert_eq!(r.code, OUTLIER_CODE);
    }

    proptest! {
        #[test]
        fn prop_error_bounded_or_outlier_exact(
            v in -1e6f32..1e6f32,
            p in -1e6f32..1e6f32,
            eb in 1e-6f64..1e3f64,
        ) {
            let q = Quantizer::new(eb, 512).expect("valid parameters");
            let r = q.quantize(v, p);
            if r.code == OUTLIER_CODE {
                prop_assert_eq!(r.recon, v);
            } else {
                prop_assert!(((v as f64) - (r.recon as f64)).abs() <= eb);
                prop_assert_eq!(q.reconstruct(p, r.code), r.recon);
            }
        }

        #[test]
        fn prop_codes_stay_in_band(v in -100f32..100f32, p in -100f32..100f32) {
            let q = Quantizer::new(0.01, 256).expect("valid parameters");
            let r = q.quantize(v, p);
            prop_assert!((r.code as usize) < q.alphabet_size());
        }

        #[test]
        fn prop_round_half_away_matches_f64_round(x in -1e18f64..1e18f64) {
            prop_assert_eq!(round_half_away(x).to_bits(), x.round().to_bits());
            // Snap to the nearest exact tie as well — uniform draws
            // never land on one by chance.
            let tie = x.trunc() + 0.5f64.copysign(x);
            prop_assert_eq!(round_half_away(tie).to_bits(), tie.round().to_bits());
        }

        #[test]
        fn prop_quantize8_matches_eight_scalar_calls_bitwise(
            vals_v in collection::vec(-1e6f32..1e6f32, 8),
            deltas in collection::vec(-10f32..10f32, 8),
            eb in 1e-6f64..1e3f64,
        ) {
            let q = Quantizer::new(eb, 512).expect("valid parameters");
            let vals: [f32; 8] = std::array::from_fn(|j| vals_v[j]);
            let preds: [f32; 8] = std::array::from_fn(|j| vals[j] + deltas[j]);
            let (codes, recons) = q.quantize8(&vals, &preds);
            for j in 0..8 {
                let r = q.quantize(vals[j], preds[j]);
                prop_assert_eq!(codes[j], r.code, "lane {}", j);
                prop_assert_eq!(recons[j].to_bits(), r.recon.to_bits(), "lane {}", j);
            }
        }
    }

    #[test]
    fn round_half_away_matches_f64_round_on_edges() {
        // Exact ties (both signs), tie at the precision limit where the
        // fraction spacing is exactly 0.5, zeros, non-finites.
        let cases = [
            0.5, -0.5, 1.5, -1.5, 2.5, -2.5, 0.49999999999999994, -0.49999999999999994,
            2f64.powi(51) + 0.5, -(2f64.powi(51) + 0.5), 2f64.powi(52), -(2f64.powi(52)),
            0.0, -0.0, f64::INFINITY, f64::NEG_INFINITY, f64::NAN, f64::MAX, f64::MIN,
        ];
        for x in cases {
            assert_eq!(round_half_away(x).to_bits(), x.round().to_bits(), "x={x:e}");
        }
    }

    #[test]
    fn quantize8_matches_scalar_on_edge_lanes() {
        // One batch mixing every arm: exact hit, rounded code, both
        // outlier kinds (out-of-band, NaN value, NaN prediction).
        let q = Quantizer::new(0.001, 512).expect("valid parameters");
        let vals = [1.0f32, 1.25, 100.0, f32::NAN, 1.0, -3.5, 0.0, 1e30];
        let preds = [1.0f32, 1.0, 0.0, 1.0, f32::NAN, -3.5002, 1e-5, 1e30];
        let (codes, recons) = q.quantize8(&vals, &preds);
        for j in 0..8 {
            let r = q.quantize(vals[j], preds[j]);
            assert_eq!(codes[j], r.code, "lane {j}");
            assert_eq!(recons[j].to_bits(), r.recon.to_bits(), "lane {j}");
        }
    }
}
