//! Error-bounded quantization, the control loop of every SZ-family
//! compressor (paper § III-A).
//!
//! For each element, a predictor produces `p`; the quantizer encodes the
//! prediction error as an integer *quant-code* `q = round((x - p) / 2e)`
//! and reconstructs `x' = p + 2e*q`, guaranteeing `|x - x'| <= e`. The
//! reconstruction — not the original — feeds subsequent predictions, so
//! compression and decompression replay identical state.
//!
//! Codes are stored biased by `radius` (`R` in the paper): the in-range
//! band is `1..2R`, with `R` meaning "zero error". Code `0` is reserved
//! for *outliers* — elements whose error exceeds the representable band —
//! which are stream-compacted into an [`Outliers`] side channel and
//! reproduced losslessly on decompression.
//!
//! Invalid inputs (non-positive bounds, NaN/Inf fields) are typed
//! [`QuantError`]s, never panics: this crate sits below the public
//! compression API, so everything reachable from hostile input must
//! stay `Result`-shaped. The lint gate below enforces it.

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bound;
pub mod error;
pub mod outlier;
pub mod prequant;
pub mod quantizer;

pub use bound::ErrorBound;
pub use error::QuantError;
pub use outlier::Outliers;
pub use prequant::{prequantize, prequant_reconstruct};
pub use quantizer::{Quantized, Quantizer, OUTLIER_CODE};
