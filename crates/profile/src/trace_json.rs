//! Chrome `trace_event` export and flamegraph-style text summary.
//!
//! [`chrome_trace`] serialises recorded [`Event`]s in the Trace Event
//! Format consumed by Perfetto (`ui.perfetto.dev`) and `chrome://tracing`:
//! a `traceEvents` array of `B`/`E` duration events and `X` complete
//! events, timestamps in microseconds, one `pid` for the process and the
//! tracer's dense `tid` per recording thread.
//!
//! [`flame_summary`] folds the same events into an indented inclusive-
//! time tree per thread — the quick look when loading a UI is overkill.

use std::collections::BTreeMap;

use crate::metrics::{fmt_f64, json_str};
use crate::tracer::{Event, Phase};

/// Serialise events as a Chrome trace JSON document.
///
/// `dropped` (ring wraparound losses from
/// [`crate::tracer::Tracer::take_events`]) is recorded under
/// `otherData.droppedEvents` so a truncated trace is never mistaken for
/// a complete one. `thread_labels` (from
/// [`crate::tracer::Tracer::thread_labels`]) become `thread_name`
/// metadata events, which is how Perfetto names a lane — gpu-sim stream
/// workers show up as one `stream-<n>` lane each.
pub fn chrome_trace(events: &[Event], dropped: u64, thread_labels: &[(u32, String)]) -> String {
    let mut out = String::from("{\n\"traceEvents\": [");
    let mut first = true;
    for (tid, label) in thread_labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "\n  {{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {}, \"args\": {{\"name\": {}}}}}",
            tid,
            json_str(label),
        ));
    }
    for ev in events.iter() {
        if !first {
            out.push(',');
        }
        first = false;
        let ph = match ev.phase {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Complete => "X",
        };
        let ts_us = ev.ts_ns as f64 / 1e3;
        out.push_str(&format!(
            "\n  {{\"name\": {}, \"cat\": {}, \"ph\": \"{}\", \"ts\": {}, \"pid\": 1, \"tid\": {}",
            json_str(ev.name.as_str()),
            json_str(ev.cat.label()),
            ph,
            fmt_f64(ts_us),
            ev.tid,
        ));
        if ev.phase == Phase::Complete {
            out.push_str(&format!(", \"dur\": {}", fmt_f64(ev.dur_ns as f64 / 1e3)));
        }
        out.push('}');
    }
    out.push_str(&format!(
        "\n],\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {{\"droppedEvents\": {dropped}}}\n}}"
    ));
    out
}

struct Node {
    total_ns: u64,
    count: u64,
    children: BTreeMap<String, Node>,
}

impl Node {
    fn new() -> Self {
        Node { total_ns: 0, count: 0, children: BTreeMap::new() }
    }
}

/// Fold events into an indented per-thread inclusive-time tree.
///
/// `B`/`E` pairs nest by position; `X` events count as leaves under the
/// currently open stack. Unbalanced `E`s (span opened before tracing
/// was enabled) are ignored. Labelled threads (gpu-sim streams) show
/// their lane name in the header.
pub fn flame_summary_labeled(events: &[Event], thread_labels: &[(u32, String)]) -> String {
    // Partition per tid, preserving order.
    let mut threads: BTreeMap<u32, Vec<&Event>> = BTreeMap::new();
    for ev in events {
        threads.entry(ev.tid).or_default().push(ev);
    }
    let mut out = String::new();
    for (tid, evs) in &threads {
        let mut root = Node::new();
        // Stack of (path of names, begin ts).
        let mut stack: Vec<(String, u64)> = Vec::new();
        for ev in evs {
            match ev.phase {
                Phase::Begin => stack.push((ev.name.as_str().to_string(), ev.ts_ns)),
                Phase::End => {
                    if let Some((name, t0)) = stack.pop() {
                        let dur = ev.ts_ns.saturating_sub(t0);
                        insert(&mut root, &stack, &name, dur);
                    }
                }
                Phase::Complete => {
                    insert(&mut root, &stack, ev.name.as_str(), ev.dur_ns);
                }
            }
        }
        if root.children.is_empty() {
            continue;
        }
        match thread_labels.iter().find(|(t, _)| t == tid) {
            Some((_, label)) => out.push_str(&format!("thread {tid} ({label})\n")),
            None => out.push_str(&format!("thread {tid}\n")),
        }
        render(&root, 1, &mut out);
    }
    if out.is_empty() {
        out.push_str("no spans recorded\n");
    }
    out
}

/// [`flame_summary_labeled`] with no lane labels.
pub fn flame_summary(events: &[Event]) -> String {
    flame_summary_labeled(events, &[])
}

fn insert(root: &mut Node, stack: &[(String, u64)], name: &str, dur_ns: u64) {
    let mut node = root;
    for (frame, _) in stack {
        node = node.children.entry(frame.clone()).or_insert_with(Node::new);
    }
    let leaf = node.children.entry(name.to_string()).or_insert_with(Node::new);
    leaf.total_ns += dur_ns;
    leaf.count += 1;
}

fn render(node: &Node, depth: usize, out: &mut String) {
    // Children sorted by inclusive time, heaviest first.
    let mut kids: Vec<(&String, &Node)> = node.children.iter().collect();
    kids.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
    for (name, child) in kids {
        out.push_str(&format!(
            "{}{:<24} {:>10.3} ms  x{}\n",
            "  ".repeat(depth),
            name,
            child.total_ns as f64 / 1e6,
            child.count,
        ));
        render(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{Category, Tracer};

    fn sample_events() -> Vec<Event> {
        let t = Tracer::new(64);
        t.begin("compress", Category::Stage);
        t.begin("predict", Category::Stage);
        t.complete("g-interp", Category::Kernel, 500_000);
        t.end("predict", Category::Stage);
        t.end("compress", Category::Stage);
        t.take_events().0
    }

    #[test]
    fn chrome_trace_has_required_keys() {
        let evs = sample_events();
        let json = chrome_trace(&evs, 3, &[]);
        let v = crate::minjson::parse(&json).expect("valid json");
        let arr = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(arr.len(), 5);
        for ev in arr {
            for key in ["name", "ph", "ts", "pid", "tid"] {
                assert!(ev.get(key).is_some(), "missing {key}");
            }
        }
        // X events carry a duration in microseconds.
        let x = arr.iter().find(|e| e.get("ph").unwrap().as_str() == Some("X")).unwrap();
        assert_eq!(x.get("dur").unwrap().as_f64(), Some(500.0));
        assert_eq!(
            v.get("otherData").unwrap().get("droppedEvents").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn flame_summary_nests_and_sums() {
        let text = flame_summary(&sample_events());
        let compress_at = text.find("compress").unwrap();
        let predict_at = text.find("predict").unwrap();
        let kern_at = text.find("g-interp").unwrap();
        assert!(compress_at < predict_at && predict_at < kern_at);
        // The kernel leaf is indented deeper than its parents.
        let indent = |pos: usize| text[..pos].rfind('\n').map(|n| pos - n - 1).unwrap_or(pos);
        assert!(indent(kern_at) > indent(predict_at));
        assert!(indent(predict_at) > indent(compress_at));
    }

    #[test]
    fn flame_summary_ignores_unbalanced_ends() {
        let t = Tracer::new(64);
        t.end("phantom", Category::Stage);
        t.begin("real", Category::Stage);
        t.end("real", Category::Stage);
        let (evs, _) = t.take_events();
        let text = flame_summary(&evs);
        assert!(text.contains("real"));
        assert!(!text.contains("phantom"));
    }
}
