//! Lock-free per-thread span recording.
//!
//! Each recording thread owns a fixed-capacity ring buffer (the same
//! preallocated, write-disjoint discipline as `gpu-sim`'s `BlockSlots`):
//! pushing an event is an index bump plus a slot write in the owner's
//! own buffer — no lock, no allocation, no cross-thread contention on
//! the hot path. The only lock in the tracer guards thread
//! *registration* (first event of a new thread) and draining, both cold.
//!
//! Events are fixed-size `Copy` records with inline names, so a full
//! ring simply wraps and overwrites the oldest events (the drop count is
//! reported at drain time) instead of ever blocking a worker.

use std::cell::RefCell;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum bytes of a span name stored inline in an event. Longer names
/// are truncated at a UTF-8 boundary.
pub const MAX_NAME: usize = 40;

/// A fixed-capacity inline string (events must be `Copy` so a wrapped
/// ring slot never tears a heap pointer).
#[derive(Clone, Copy)]
pub struct SmallName {
    len: u8,
    buf: [u8; MAX_NAME],
}

impl SmallName {
    /// Store `s`, truncating to [`MAX_NAME`] bytes on a char boundary.
    pub fn new(s: &str) -> Self {
        let mut end = s.len().min(MAX_NAME);
        while end > 0 && !s.is_char_boundary(end) {
            end -= 1;
        }
        let mut buf = [0u8; MAX_NAME];
        buf[..end].copy_from_slice(&s.as_bytes()[..end]);
        SmallName { len: end as u8, buf }
    }

    /// The stored name.
    pub fn as_str(&self) -> &str {
        // Construction guarantees valid UTF-8 up to `len`.
        std::str::from_utf8(&self.buf[..self.len as usize]).unwrap_or("")
    }
}

impl std::fmt::Debug for SmallName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}", self.as_str())
    }
}

impl PartialEq for SmallName {
    fn eq(&self, other: &Self) -> bool {
        self.as_str() == other.as_str()
    }
}
impl Eq for SmallName {}

/// What a span describes (becomes the Chrome trace `cat` field).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Category {
    /// A kernel launch on the gpu-sim substrate.
    Kernel,
    /// A pipeline stage (predict, huffman, bitcomp, …).
    Stage,
    /// A batch container field.
    Batch,
    /// A stream slab.
    Stream,
    /// Anything else.
    Other,
}

impl Category {
    /// Chrome trace category string.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Kernel => "kernel",
            Category::Stage => "stage",
            Category::Batch => "batch",
            Category::Stream => "stream",
            Category::Other => "other",
        }
    }
}

/// Event phase, mirroring Chrome `trace_event` `ph` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Complete event with an inline duration (`"X"`) — used for kernel
    /// launches, which are reported once with their wall time.
    Complete,
}

/// One recorded event. Fixed-size and `Copy` by design (see module
/// docs).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    pub name: SmallName,
    pub cat: Category,
    pub phase: Phase,
    /// Small dense thread id assigned at registration (not the OS tid).
    pub tid: u32,
    /// Nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Duration for [`Phase::Complete`] events, else 0.
    pub dur_ns: u64,
}

/// Slot sequence protocol: `2*pos + 1` while the writer is mid-slot,
/// `2*pos + 2` once the event at ring position `pos` is published.
struct Slot<T> {
    seq: AtomicU64,
    data: UnsafeCell<MaybeUninit<T>>,
}

/// Single-writer ring buffer over any fixed-size `Copy` record; the
/// owner thread pushes, anyone may snapshot after the owner is
/// quiescent. Shared between the span [`Tracer`] (element = [`Event`])
/// and the always-on flight recorder (element =
/// [`crate::flight::FlightEvent`]).
pub(crate) struct Ring<T: Copy> {
    pub(crate) tid: u32,
    head: AtomicU64,
    slots: Box<[Slot<T>]>,
}

// SAFETY: `data` is written only by the owning thread; readers validate
// the per-slot `seq` (odd or changed => torn, skipped) and only trust
// slots published with a Release store. Drains are additionally
// documented to run after the writers of interest have quiesced.
unsafe impl<T: Copy + Send> Send for Ring<T> {}
unsafe impl<T: Copy + Send> Sync for Ring<T> {}

impl<T: Copy> Ring<T> {
    pub(crate) fn new(tid: u32, capacity: usize) -> Self {
        assert!(capacity.is_power_of_two(), "ring capacity must be a power of two");
        Ring {
            tid,
            head: AtomicU64::new(0),
            slots: (0..capacity)
                .map(|_| Slot {
                    seq: AtomicU64::new(0),
                    data: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
        }
    }

    /// Owner-thread only.
    pub(crate) fn push(&self, ev: T) {
        let pos = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(pos as usize) & (self.slots.len() - 1)];
        slot.seq.store(pos * 2 + 1, Ordering::Release);
        // SAFETY: single writer (owner thread); readers treat an odd or
        // stale seq as torn and skip the slot.
        unsafe { *slot.data.get() = MaybeUninit::new(ev) };
        slot.seq.store(pos * 2 + 2, Ordering::Release);
        self.head.store(pos + 1, Ordering::Release);
    }

    /// Events in `[from, head)` in push order, plus the ring's current
    /// head. Events older than one capacity are gone (overwritten).
    pub(crate) fn snapshot(&self, from: u64) -> (Vec<T>, u64) {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let start = from.max(head.saturating_sub(cap));
        let mut out = Vec::with_capacity((head - start) as usize);
        for pos in start..head {
            let slot = &self.slots[(pos as usize) & (self.slots.len() - 1)];
            if slot.seq.load(Ordering::Acquire) != pos * 2 + 2 {
                continue; // torn or already overwritten: skip
            }
            // SAFETY: seq says the slot was fully published for `pos`;
            // quiescent-drain contract makes overwrite-during-copy
            // impossible for the rings being reported.
            let ev = unsafe { (*slot.data.get()).assume_init() };
            if slot.seq.load(Ordering::Acquire) == pos * 2 + 2 {
                out.push(ev);
            }
        }
        (out, head)
    }
}

/// Per-ring drain bookkeeping.
struct RingState {
    ring: Arc<Ring<Event>>,
    /// Ring position up to which events were already taken.
    drained: u64,
}

/// The span tracer: a registry of per-thread rings plus the epoch.
pub struct Tracer {
    id: u64,
    epoch: Instant,
    capacity: usize,
    rings: Mutex<Vec<RingState>>,
    next_tid: AtomicUsize,
    depth_hint: AtomicUsize,
    /// Display labels for trace lanes (`(tid, label)`, first label
    /// wins). Cold: written once per labelled thread.
    labels: Mutex<Vec<(u32, String)>>,
}

static TRACER_IDS: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (tracer id, ring) pairs for every tracer this thread has written
    /// to. Linear scan: a thread rarely records into more than one.
    static LOCAL_RINGS: RefCell<Vec<(u64, Arc<Ring<Event>>)>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn global_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new(1 << 14)
    }
}

impl Tracer {
    /// A tracer whose per-thread rings hold `capacity` events each
    /// (rounded up to a power of two).
    pub fn new(capacity: usize) -> Self {
        Tracer {
            id: TRACER_IDS.fetch_add(1, Ordering::Relaxed),
            epoch: global_epoch(),
            capacity: capacity.next_power_of_two().max(8),
            rings: Mutex::new(Vec::new()),
            next_tid: AtomicUsize::new(0),
            depth_hint: AtomicUsize::new(0),
            labels: Mutex::new(Vec::new()),
        }
    }

    /// Attach a display label to the calling thread's trace lane — it
    /// becomes the Perfetto `thread_name` for this `tid` (how gpu-sim
    /// stream workers get a `stream-<n>` lane). The first label a
    /// thread receives wins; relabelling is ignored.
    pub fn label_current_thread(&self, label: &str) {
        let tid = self.with_ring(|ring| ring.tid);
        let mut labels = self.labels.lock().unwrap();
        if !labels.iter().any(|(t, _)| *t == tid) {
            labels.push((tid, label.to_string()));
        }
    }

    /// `(tid, label)` pairs registered so far, sorted by tid. Labels
    /// persist across [`Tracer::take_events`] drains (a thread's lane
    /// name does not change between captures).
    pub fn thread_labels(&self) -> Vec<(u32, String)> {
        let mut out = self.labels.lock().unwrap().clone();
        out.sort_by_key(|(t, _)| *t);
        out
    }

    /// Nanoseconds since the tracer epoch.
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn with_ring<R>(&self, f: impl FnOnce(&Ring<Event>) -> R) -> R {
        LOCAL_RINGS.with(|cell| {
            let mut local = cell.borrow_mut();
            if let Some((_, ring)) = local.iter().find(|(id, _)| *id == self.id) {
                return f(ring);
            }
            // Cold path: first event from this thread — register.
            let tid = self.next_tid.fetch_add(1, Ordering::Relaxed) as u32;
            let ring = Arc::new(Ring::new(tid, self.capacity));
            self.rings
                .lock()
                .unwrap()
                .push(RingState { ring: Arc::clone(&ring), drained: 0 });
            let out = f(&ring);
            local.push((self.id, ring));
            out
        })
    }

    /// Record a span-begin on the calling thread.
    pub fn begin(&self, name: &str, cat: Category) {
        let ev = Event {
            name: SmallName::new(name),
            cat,
            phase: Phase::Begin,
            tid: 0,
            ts_ns: self.now_ns(),
            dur_ns: 0,
        };
        self.push(ev);
    }

    /// Record a span-end on the calling thread.
    pub fn end(&self, name: &str, cat: Category) {
        let ev = Event {
            name: SmallName::new(name),
            cat,
            phase: Phase::End,
            tid: 0,
            ts_ns: self.now_ns(),
            dur_ns: 0,
        };
        self.push(ev);
    }

    /// Record a complete (`"X"`) event that ended now and lasted
    /// `dur_ns`.
    pub fn complete(&self, name: &str, cat: Category, dur_ns: u64) {
        let now = self.now_ns();
        let ev = Event {
            name: SmallName::new(name),
            cat,
            phase: Phase::Complete,
            tid: 0,
            ts_ns: now.saturating_sub(dur_ns),
            dur_ns,
        };
        self.push(ev);
    }

    fn push(&self, mut ev: Event) {
        self.with_ring(|ring| {
            ev.tid = ring.tid;
            ring.push(ev);
        });
        self.depth_hint.fetch_add(0, Ordering::Relaxed); // keep field used cheaply
    }

    /// Take every event recorded since the previous `take_events`, in
    /// per-thread push order, threads sorted by tid. Returns the events
    /// and how many were lost to ring wraparound.
    ///
    /// Call when the recording threads of interest are quiescent (after
    /// the pipeline/launch being profiled has returned).
    pub fn take_events(&self) -> (Vec<Event>, u64) {
        let mut rings = self.rings.lock().unwrap();
        rings.sort_by_key(|r| r.ring.tid);
        let mut out = Vec::new();
        let mut dropped = 0u64;
        for st in rings.iter_mut() {
            let (evs, head) = st.ring.snapshot(st.drained);
            let expected = head - st.drained;
            dropped += expected.saturating_sub(evs.len() as u64);
            st.drained = head;
            out.extend(evs);
        }
        (out, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_name_truncates_on_char_boundary() {
        let n = SmallName::new("short");
        assert_eq!(n.as_str(), "short");
        let long = "x".repeat(100);
        assert_eq!(SmallName::new(&long).as_str().len(), MAX_NAME);
        // Multi-byte char straddling the limit is dropped whole.
        let tricky = format!("{}é", "a".repeat(MAX_NAME - 1));
        let t = SmallName::new(&tricky);
        assert_eq!(t.as_str(), "a".repeat(MAX_NAME - 1));
    }

    #[test]
    fn spans_record_in_order_with_nesting() {
        let t = Tracer::new(64);
        t.begin("outer", Category::Stage);
        t.begin("inner", Category::Stage);
        t.end("inner", Category::Stage);
        t.complete("kern", Category::Kernel, 1000);
        t.end("outer", Category::Stage);
        let (evs, dropped) = t.take_events();
        assert_eq!(dropped, 0);
        let names: Vec<&str> = evs.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner", "inner", "kern", "outer"]);
        assert_eq!(evs[0].phase, Phase::Begin);
        assert_eq!(evs[2].phase, Phase::End);
        assert_eq!(evs[3].phase, Phase::Complete);
        assert_eq!(evs[3].dur_ns, 1000);
        // Timestamps are monotone within the thread.
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns || w[1].phase == Phase::Complete));
    }

    #[test]
    fn take_events_is_incremental() {
        let t = Tracer::new(64);
        t.begin("a", Category::Other);
        assert_eq!(t.take_events().0.len(), 1);
        assert_eq!(t.take_events().0.len(), 0);
        t.end("a", Category::Other);
        let (evs, _) = t.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].phase, Phase::End);
    }

    #[test]
    fn wraparound_drops_oldest_and_reports_count() {
        let t = Tracer::new(8); // power of two, tiny
        for i in 0..20 {
            t.begin(&format!("s{i}"), Category::Other);
        }
        let (evs, dropped) = t.take_events();
        assert_eq!(evs.len(), 8);
        assert_eq!(dropped, 12);
        // The survivors are the newest eight, in order.
        let names: Vec<&str> = evs.iter().map(|e| e.name.as_str()).collect();
        let expect: Vec<String> = (12..20).map(|i| format!("s{i}")).collect();
        assert_eq!(names, expect.iter().map(|s| s.as_str()).collect::<Vec<_>>());
    }

    #[test]
    fn multi_thread_events_attribute_to_distinct_tids_in_order() {
        let t = std::sync::Arc::new(Tracer::new(1024));
        let mut handles = Vec::new();
        for worker in 0..4 {
            let t = std::sync::Arc::clone(&t);
            handles.push(std::thread::spawn(move || {
                for i in 0..50 {
                    t.begin(&format!("w{worker}-{i}"), Category::Other);
                    t.end(&format!("w{worker}-{i}"), Category::Other);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let (evs, dropped) = t.take_events();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 4 * 100);
        // Per tid: timestamps monotone and B/E alternate in push order.
        let tids: std::collections::BTreeSet<u32> = evs.iter().map(|e| e.tid).collect();
        assert_eq!(tids.len(), 4);
        for tid in tids {
            let mine: Vec<&Event> = evs.iter().filter(|e| e.tid == tid).collect();
            assert_eq!(mine.len(), 100);
            assert!(mine.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
            for pair in mine.chunks(2) {
                assert_eq!(pair[0].phase, Phase::Begin);
                assert_eq!(pair[1].phase, Phase::End);
                assert_eq!(pair[0].name, pair[1].name);
            }
        }
    }
}
