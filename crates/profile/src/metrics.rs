//! Metrics registry: named monotonic counters and log-bucket histograms.
//!
//! Counters accumulate exact integer totals (bytes in/out, outliers,
//! fields processed); histograms capture distributions (per-field
//! compression ratio in parts-per-thousand, codebook entropy in
//! milli-bits) in power-of-two buckets. Everything is keyed by plain
//! string names so call sites stay one line.
//!
//! The registry is not on the per-element hot path — call sites record
//! once per field/slab/stage — so a mutex-guarded map is the right
//! trade: exact, ordered snapshots with zero unsafe code.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Number of log2 buckets (covers the full `u64` range).
pub const HIST_BUCKETS: usize = 65;

/// A power-of-two-bucket histogram of `u64` samples.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// `buckets[0]` counts zeros; `buckets[b]` counts samples with
    /// `2^(b-1) <= v < 2^b`.
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn record(&mut self, v: u64) {
        let b = if v == 0 { 0 } else { 64 - v.leading_zeros() as usize };
        self.buckets[b] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Arithmetic mean of the recorded samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// An ordered, self-consistent copy of the registry at one instant.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, Histogram>,
}

impl Snapshot {
    /// The part of `self` recorded *after* `earlier` — per-request /
    /// per-interval scoping over a shared registry: snapshot before the
    /// work, snapshot after, and `after.delta(&before)` is exactly what
    /// the work recorded, with no bleed from jobs that ran earlier in
    /// the same process.
    ///
    /// Counters subtract (entries that did not move are dropped).
    /// Histograms subtract bucket-wise along with `count`/`sum`; the
    /// original per-sample `min`/`max` cannot be recovered from a
    /// subtraction, so they are re-derived from the occupied delta
    /// buckets' bounds (exact for bucket 0, conservative otherwise).
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut counters = BTreeMap::new();
        for (k, &v) in &self.counters {
            let base = earlier.counters.get(k).copied().unwrap_or(0);
            let d = v.saturating_sub(base);
            if d > 0 {
                counters.insert(k.clone(), d);
            }
        }
        let mut histograms = BTreeMap::new();
        for (k, h) in &self.histograms {
            let mut d = Histogram::default();
            let base = earlier.histograms.get(k);
            for (b, slot) in d.buckets.iter_mut().enumerate() {
                let prev = base.map(|e| e.buckets[b]).unwrap_or(0);
                *slot = h.buckets[b].saturating_sub(prev);
            }
            d.count = h.count.saturating_sub(base.map(|e| e.count).unwrap_or(0));
            d.sum = h.sum.saturating_sub(base.map(|e| e.sum).unwrap_or(0));
            if d.count == 0 {
                continue;
            }
            for (b, &n) in d.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                // Bucket b holds values in [2^(b-1), 2^b) (bucket 0 is
                // exactly zero): lower bound for min, upper for max.
                let lo = if b == 0 { 0 } else { 1u64 << (b - 1) };
                let hi = if b == 0 {
                    0
                } else if b >= 64 {
                    u64::MAX
                } else {
                    (1u64 << b) - 1
                };
                d.min = d.min.min(lo);
                d.max = d.max.max(hi);
            }
            histograms.insert(k.clone(), d);
        }
        Snapshot { counters, histograms }
    }

    /// Render as a JSON object with `counters` and `histograms` keys
    /// (histogram buckets are emitted sparsely as `[bucket, count]`
    /// pairs).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n    {}: {}", json_str(k), v));
        }
        out.push_str("\n  },\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "\n    {}: {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": {}, \"log2_buckets\": [",
                json_str(k),
                h.count,
                h.sum,
                min,
                h.max,
                fmt_f64(h.mean()),
            ));
            let mut first = true;
            for (b, n) in h.buckets.iter().enumerate() {
                if *n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    out.push_str(&format!("[{b}, {n}]"));
                    first = false;
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  }\n}");
        out
    }
}

/// Sanitize a metric name for the Prometheus exposition format:
/// `[a-zA-Z0-9_]` pass through, everything else becomes `_`.
fn prom_name(s: &str) -> String {
    s.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

impl Snapshot {
    /// Render as Prometheus text exposition format (version 0.0.4) —
    /// what a `/metrics` endpoint serves. Counters become `counter`
    /// samples; log2 histograms become native Prometheus histograms
    /// with cumulative `_bucket{le="..."}` samples at power-of-two
    /// boundaries (only occupied buckets are listed, plus `+Inf`).
    /// All names are prefixed `cuszi_` and sanitized.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (k, v) in &self.counters {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE cuszi_{n} counter\ncuszi_{n} {v}\n"));
        }
        for (k, h) in &self.histograms {
            let n = prom_name(k);
            out.push_str(&format!("# TYPE cuszi_{n} histogram\n"));
            let mut cum = 0u64;
            for (b, cnt) in h.buckets.iter().enumerate() {
                if *cnt == 0 {
                    continue;
                }
                cum += cnt;
                // Bucket b holds v in [2^(b-1), 2^b), so its inclusive
                // upper bound is 2^b - 1; bucket 0 holds only zeros.
                let le: u128 = if b == 0 { 0 } else { (1u128 << b) - 1 };
                out.push_str(&format!("cuszi_{n}_bucket{{le=\"{le}\"}} {cum}\n"));
            }
            out.push_str(&format!("cuszi_{n}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("cuszi_{n}_sum {}\n", h.sum));
            out.push_str(&format!("cuszi_{n}_count {}\n", h.count));
        }
        out
    }
}

/// JSON-escape a string (shared by the trace and metrics writers).
pub(crate) fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a float so it is valid JSON (no `NaN`/`inf` literals).
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The metrics registry.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (created at zero).
    pub fn count(&self, name: &str, delta: u64) {
        let mut g = self.inner.lock().unwrap();
        match g.counters.get_mut(name) {
            Some(v) => *v = v.saturating_add(delta),
            None => {
                g.counters.insert(name.to_string(), delta);
            }
        }
    }

    /// Record one sample into the named histogram.
    pub fn observe(&self, name: &str, value: u64) {
        let mut g = self.inner.lock().unwrap();
        match g.histograms.get_mut(name) {
            Some(h) => h.record(value),
            None => {
                let mut h = Histogram::default();
                h.record(value);
                g.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Copy the current state.
    pub fn snapshot(&self) -> Snapshot {
        let g = self.inner.lock().unwrap();
        Snapshot { counters: g.counters.clone(), histograms: g.histograms.clone() }
    }

    /// Copy the current state and reset the registry to empty.
    pub fn take(&self) -> Snapshot {
        let mut g = self.inner.lock().unwrap();
        Snapshot {
            counters: std::mem::take(&mut g.counters),
            histograms: std::mem::take(&mut g.histograms),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let r = Registry::new();
        r.count("bytes_in", 100);
        r.count("bytes_in", 23);
        r.count("fields", 1);
        let s = r.snapshot();
        assert_eq!(s.counters["bytes_in"], 123);
        assert_eq!(s.counters["fields"], 1);
        r.count("bytes_in", u64::MAX);
        assert_eq!(r.snapshot().counters["bytes_in"], u64::MAX);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let r = Registry::new();
        for v in [0u64, 1, 2, 3, 4, 1024] {
            r.observe("cr", v);
        }
        let s = r.snapshot();
        let h = &s.histograms["cr"];
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1024);
        assert_eq!(h.buckets[0], 1); // 0
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[2], 2); // 2..3
        assert_eq!(h.buckets[3], 1); // 4..7
        assert_eq!(h.buckets[11], 1); // 1024..2047
        assert!((h.mean() - (1034.0 / 6.0)).abs() < 1e-12);
    }

    #[test]
    fn delta_isolates_an_interval() {
        let r = Registry::new();
        r.count("bytes_in", 100);
        r.observe("cr", 8);
        let before = r.snapshot();
        r.count("bytes_in", 23);
        r.count("fresh", 7);
        r.observe("cr", 1024);
        r.observe("cr", 0);
        let after = r.snapshot();
        let d = after.delta(&before);
        assert_eq!(d.counters.get("bytes_in"), Some(&23), "only the interval's increment");
        assert_eq!(d.counters.get("fresh"), Some(&7));
        let h = &d.histograms["cr"];
        assert_eq!(h.count, 2, "pre-interval samples excluded");
        assert_eq!(h.sum, 1024);
        assert_eq!(h.buckets[0], 1, "the interval's zero sample");
        assert_eq!(h.buckets[11], 1, "the interval's 1024 sample");
        assert_eq!(h.buckets[4], 0, "the earlier 8 sample subtracted out");
        assert_eq!(h.min, 0);
        assert!(h.max >= 1024 && h.max < 2048, "max from occupied bucket bound");
        // A no-op interval deltas to empty.
        let empty = after.delta(&after);
        assert!(empty.counters.is_empty() && empty.histograms.is_empty());
    }

    #[test]
    fn take_resets() {
        let r = Registry::new();
        r.count("a", 1);
        r.observe("h", 7);
        let s = r.take();
        assert_eq!(s.counters.len(), 1);
        assert_eq!(s.histograms.len(), 1);
        let empty = r.snapshot();
        assert!(empty.counters.is_empty() && empty.histograms.is_empty());
    }

    #[test]
    fn histogram_bucket_boundaries_zero_one_and_max() {
        // The three boundary cases of the log2 bucketing rule:
        // 0 is its own bucket, 1 lands in bucket 1 (2^0..2^1), and
        // u64::MAX lands in the final bucket 64 (2^63..2^64).
        let r = Registry::new();
        r.observe("edge", 0);
        r.observe("edge", 1);
        r.observe("edge", u64::MAX);
        let h = &r.snapshot().histograms["edge"];
        assert_eq!(h.buckets[0], 1, "zero belongs to bucket 0");
        assert_eq!(h.buckets[1], 1, "one belongs to bucket 1");
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1, "u64::MAX belongs to the last bucket");
        assert_eq!(h.buckets.iter().sum::<u64>(), 3);
        assert_eq!((h.min, h.max), (0, u64::MAX));
        // Power-of-two edges: 2^k is the first value of bucket k+1.
        let r2 = Registry::new();
        for k in [1u32, 8, 33, 62] {
            r2.observe("pow", (1u64 << k) - 1);
            r2.observe("pow", 1u64 << k);
        }
        let h2 = &r2.snapshot().histograms["pow"];
        for k in [1usize, 8, 33, 62] {
            assert!(h2.buckets[k] >= 1, "2^{k}-1 in bucket {k}");
            assert!(h2.buckets[k + 1] >= 1, "2^{k} in bucket {}", k + 1);
        }
    }

    #[test]
    fn prometheus_exposition_renders_counters_and_histograms() {
        let r = Registry::new();
        r.count("compress.bytes_in", 4096);
        r.observe("audit.level-1 outliers", 0);
        r.observe("audit.level-1 outliers", 3);
        r.observe("audit.level-1 outliers", 1024);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains("# TYPE cuszi_compress_bytes_in counter"));
        assert!(text.contains("cuszi_compress_bytes_in 4096"));
        // Sanitized histogram name, cumulative buckets, sum and count.
        assert!(text.contains("# TYPE cuszi_audit_level_1_outliers histogram"));
        assert!(text.contains("cuszi_audit_level_1_outliers_bucket{le=\"0\"} 1"));
        assert!(text.contains("cuszi_audit_level_1_outliers_bucket{le=\"3\"} 2"));
        assert!(text.contains("cuszi_audit_level_1_outliers_bucket{le=\"2047\"} 3"));
        assert!(text.contains("cuszi_audit_level_1_outliers_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("cuszi_audit_level_1_outliers_sum 1027"));
        assert!(text.contains("cuszi_audit_level_1_outliers_count 3"));
        // Every line is a comment or a `name value` sample.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "malformed exposition line: {line:?}"
            );
        }
    }

    #[test]
    fn snapshot_json_is_parseable() {
        let r = Registry::new();
        r.count("bytes\"in\n", 5);
        r.observe("entropy_mbits", 4321);
        let json = r.snapshot().to_json();
        let v = crate::minjson::parse(&json).expect("valid json");
        let obj = v.as_object().unwrap();
        assert!(obj.contains_key("counters"));
        let hists = obj["histograms"].as_object().unwrap();
        let h = hists["entropy_mbits"].as_object().unwrap();
        assert_eq!(h["count"].as_f64().unwrap(), 1.0);
        assert_eq!(h["sum"].as_f64().unwrap(), 4321.0);
    }
}
