//! Per-kernel profile table — the Nsight-style evidence view.
//!
//! Each [`LaunchRecord`] from the substrate becomes (or merges into) a
//! row keyed by kernel name. A row carries the aggregated
//! [`KernelStats`], the roofline [`TimeBreakdown`] decomposition, and
//! the derived Nsight-style columns: simulated time, achieved GB/s
//! against the bandwidth ceiling, coalescing efficiency, DRAM excess
//! (sector-padding waste), occupancy waves, and a bottleneck verdict
//! with its share of the binding ceiling.
//!
//! Everything in a row except host wall time is a pure function of the
//! measured integer counters and device constants, so two runs of the
//! same workload produce byte-identical tables (the determinism test in
//! `tests/` relies on this).

use cuszi_gpu_sim::hook::LaunchRecord;
use cuszi_gpu_sim::timing::{Bottleneck, TimeBreakdown, TimingModel};
use cuszi_gpu_sim::{DeviceSpec, KernelStats};

use crate::metrics::{fmt_f64, json_str};

/// One kernel's aggregated profile.
#[derive(Clone, Debug)]
pub struct KernelRow {
    /// Kernel name (from `launch_named`).
    pub name: String,
    /// Number of launches merged into this row.
    pub launches: u64,
    /// Launches reported while unwinding (partial stats).
    pub incomplete: u64,
    /// Summed stats across all launches.
    pub stats: KernelStats,
    /// Summed roofline decomposition across all launches.
    pub breakdown: TimeBreakdown,
    /// Summed host wall time (excluded from determinism comparisons).
    pub wall_s: f64,
    /// Device the launches ran on (rows never mix devices).
    pub device: DeviceSpec,
}

impl KernelRow {
    /// Build a single-launch row directly from returned [`KernelStats`]
    /// — the calibration input surface for callers (like the G-Interp
    /// autotuner) that hold a kernel's stats in hand and want the
    /// derived roofline columns without installing the global launch
    /// observer. `wall_s` is zero: a synthesized row has no host
    /// wall-clock measurement.
    pub fn from_stats(name: &str, stats: &KernelStats, device: &DeviceSpec) -> KernelRow {
        let model = TimingModel::new(*device);
        KernelRow {
            name: name.to_string(),
            launches: 1,
            incomplete: 0,
            stats: *stats,
            breakdown: model.breakdown(stats),
            wall_s: 0.0,
            device: *device,
        }
    }

    /// Total simulated time, seconds.
    pub fn sim_s(&self) -> f64 {
        self.breakdown.total_s()
    }

    /// Achieved DRAM throughput over simulated time, GB/s.
    pub fn achieved_gbps(&self) -> f64 {
        let t = self.sim_s();
        if t <= 0.0 {
            return 0.0;
        }
        self.stats.dram_bytes() as f64 / t / 1e9
    }

    /// Achieved bandwidth as a fraction of the roofline ceiling.
    pub fn roofline_fraction(&self, model: &TimingModel) -> f64 {
        self.achieved_gbps() * 1e9 / model.mem_ceiling_bytes_per_s()
    }

    /// Bottleneck verdict and its share of the simulated time.
    pub fn verdict(&self) -> (Bottleneck, f64) {
        self.breakdown.verdict()
    }
}

/// The profile table: rows in first-launch order.
#[derive(Default)]
pub struct KernelTable {
    rows: Vec<KernelRow>,
}

impl KernelTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Merge one launch into the table.
    pub fn record(&mut self, rec: &LaunchRecord<'_>) {
        let model = TimingModel::new(*rec.device);
        let bd = model.breakdown(&rec.stats);
        match self.rows.iter_mut().find(|r| r.name == rec.name) {
            Some(row) => {
                row.launches += 1;
                row.incomplete += u64::from(!rec.completed);
                row.stats.merge(&rec.stats);
                row.breakdown.overhead_s += bd.overhead_s;
                row.breakdown.mem_s += bd.mem_s;
                row.breakdown.compute_s += bd.compute_s;
                row.breakdown.shared_s += bd.shared_s;
                row.breakdown.latency_s += bd.latency_s;
                row.breakdown.waves += bd.waves;
                row.wall_s += rec.wall_s;
            }
            None => self.rows.push(KernelRow {
                name: rec.name.to_string(),
                launches: 1,
                incomplete: u64::from(!rec.completed),
                stats: rec.stats,
                breakdown: bd,
                wall_s: rec.wall_s,
                device: *rec.device,
            }),
        }
    }

    /// The rows, in first-launch order.
    pub fn rows(&self) -> &[KernelRow] {
        &self.rows
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Take the rows, leaving the table empty.
    pub fn take(&mut self) -> Vec<KernelRow> {
        std::mem::take(&mut self.rows)
    }

    /// Rebuild a table view over previously drained rows.
    pub fn restore(&mut self, rows: Vec<KernelRow>) {
        self.rows = rows;
    }

    /// Render the Nsight-style text report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.rows.is_empty() {
            out.push_str("kernel profile: no launches recorded\n");
            return out;
        }
        let dev = &self.rows[0].device;
        let model = TimingModel::new(*dev);
        out.push_str(&format!(
            "kernel profile — {} (roofline ceiling {:.0} GB/s = {:.0} peak x {:.2} eff)\n",
            dev.name,
            model.mem_ceiling_bytes_per_s() / 1e9,
            dev.mem_bw_gbps,
            model.mem_efficiency,
        ));
        out.push_str(&format!(
            "{:<18} {:>7} {:>10} {:>8} {:>6} {:>8} {:>10} {:>6}  {}\n",
            "kernel", "launch", "sim_ms", "GB/s", "%roof", "coalesce", "excess_KB", "waves", "verdict"
        ));
        let total_sim: f64 = self.rows.iter().map(|r| r.sim_s()).sum();
        for r in &self.rows {
            let model = TimingModel::new(r.device);
            let (verdict, share) = r.verdict();
            let flag = if r.incomplete > 0 { " [partial]" } else { "" };
            out.push_str(&format!(
                "{:<18} {:>7} {:>10.4} {:>8.1} {:>5.1}% {:>8.3} {:>10.1} {:>6.1}  {} ({:.0}% of time){}\n",
                r.name,
                r.launches,
                r.sim_s() * 1e3,
                r.achieved_gbps(),
                r.roofline_fraction(&model) * 100.0,
                r.stats.coalescing_efficiency(),
                r.stats.dram_excess_bytes() as f64 / 1024.0,
                r.breakdown.waves / r.launches as f64,
                verdict.label(),
                share * 100.0,
                flag,
            ));
        }
        out.push_str(&format!(
            "total simulated {:.4} ms across {} kernels\n",
            total_sim * 1e3,
            self.rows.len()
        ));
        out
    }

    /// Render the table as a JSON array (for `profile_<n>.json`).
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let model = TimingModel::new(r.device);
            let (verdict, share) = r.verdict();
            out.push_str(&format!(
                concat!(
                    "\n  {{\"name\": {}, \"launches\": {}, \"incomplete\": {}, ",
                    "\"device\": {}, \"blocks\": {}, \"dram_bytes\": {}, ",
                    "\"useful_bytes\": {}, \"dram_excess_bytes\": {}, \"flops\": {}, ",
                    "\"shared_bytes\": {}, \"barriers\": {}, ",
                    "\"sim_ms\": {}, \"wall_ms\": {}, \"achieved_gbps\": {}, ",
                    "\"roofline_fraction\": {}, \"coalescing_efficiency\": {}, ",
                    "\"waves\": {}, \"verdict\": {}, \"verdict_share\": {}, ",
                    "\"breakdown_ms\": {{\"overhead\": {}, \"mem\": {}, \"compute\": {}, ",
                    "\"shared\": {}, \"latency\": {}}}}}"
                ),
                json_str(&r.name),
                r.launches,
                r.incomplete,
                json_str(r.device.name),
                r.stats.blocks,
                r.stats.dram_bytes(),
                r.stats.useful_bytes(),
                r.stats.dram_excess_bytes(),
                r.stats.flops,
                r.stats.shared_bytes,
                r.stats.barriers,
                fmt_f64(r.sim_s() * 1e3),
                fmt_f64(r.wall_s * 1e3),
                fmt_f64(r.achieved_gbps()),
                fmt_f64(r.roofline_fraction(&model)),
                fmt_f64(r.stats.coalescing_efficiency()),
                fmt_f64(r.breakdown.waves),
                json_str(verdict.label()),
                fmt_f64(share),
                fmt_f64(r.breakdown.overhead_s * 1e3),
                fmt_f64(r.breakdown.mem_s * 1e3),
                fmt_f64(r.breakdown.compute_s * 1e3),
                fmt_f64(r.breakdown.shared_s * 1e3),
                fmt_f64(r.breakdown.latency_s * 1e3),
            ));
        }
        out.push_str("\n]");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cuszi_gpu_sim::exec::Grid;
    use cuszi_gpu_sim::A100;

    fn rec<'a>(name: &'a str, stats: KernelStats, completed: bool) -> LaunchRecord<'a> {
        LaunchRecord {
            name,
            grid: Grid::linear(stats.blocks.max(1) as u32, 32),
            device: &A100,
            stats,
            wall_s: 0.001,
            completed,
            stream: None,
            device_id: 0,
        }
    }

    fn stream(bytes: u64) -> KernelStats {
        KernelStats {
            load_sectors: bytes / 64,
            store_sectors: bytes / 64,
            load_bytes: bytes / 2,
            store_bytes: bytes / 2,
            flops: bytes / 4,
            blocks: 1024,
            ..Default::default()
        }
    }

    #[test]
    fn from_stats_matches_an_observed_single_launch() {
        let stats = stream(1 << 22);
        let synthesized = KernelRow::from_stats("k", &stats, &A100);
        let mut t = KernelTable::new();
        t.record(&rec("k", stats, true));
        let observed = &t.rows()[0];
        assert_eq!(synthesized.sim_s(), observed.sim_s());
        assert_eq!(synthesized.achieved_gbps(), observed.achieved_gbps());
        assert_eq!(synthesized.breakdown.waves, observed.breakdown.waves);
        assert_eq!(synthesized.stats.dram_excess_bytes(), observed.stats.dram_excess_bytes());
        assert_eq!(synthesized.wall_s, 0.0);
    }

    #[test]
    fn launches_merge_by_name_in_first_seen_order() {
        let mut t = KernelTable::new();
        t.record(&rec("b", stream(1 << 20), true));
        t.record(&rec("a", stream(1 << 20), true));
        t.record(&rec("b", stream(1 << 20), true));
        assert_eq!(t.rows().len(), 2);
        assert_eq!(t.rows()[0].name, "b");
        assert_eq!(t.rows()[0].launches, 2);
        assert_eq!(t.rows()[0].stats.blocks, 2048);
        assert_eq!(t.rows()[1].name, "a");
    }

    #[test]
    fn derived_columns_match_the_model() {
        let mut t = KernelTable::new();
        let stats = stream(1 << 26);
        t.record(&rec("k", stats, true));
        let r = &t.rows()[0];
        let model = TimingModel::new(A100);
        assert_eq!(r.sim_s(), model.kernel_time(&stats));
        let (v, share) = r.verdict();
        assert_eq!(v, Bottleneck::Memory);
        assert!(share > 0.5);
        assert!(r.roofline_fraction(&model) <= 1.0 + 1e-9);
        assert_eq!(r.stats.dram_excess_bytes(), 0);
    }

    #[test]
    fn incomplete_launches_are_flagged() {
        let mut t = KernelTable::new();
        t.record(&rec("k", stream(1 << 20), false));
        assert_eq!(t.rows()[0].incomplete, 1);
        assert!(t.render().contains("[partial]"));
    }

    #[test]
    fn report_and_json_are_well_formed() {
        let mut t = KernelTable::new();
        t.record(&rec("g-interp", stream(1 << 24), true));
        t.record(&rec("histogram", stream(1 << 20), true));
        let text = t.render();
        assert!(text.contains("g-interp"));
        assert!(text.contains("memory-bound") || text.contains("launch-bound"));
        let json = t.to_json();
        let v = crate::minjson::parse(&json).expect("valid json");
        let rows = v.as_array().unwrap();
        assert_eq!(rows.len(), 2);
        for row in rows {
            for key in [
                "name",
                "launches",
                "dram_bytes",
                "dram_excess_bytes",
                "sim_ms",
                "achieved_gbps",
                "roofline_fraction",
                "coalescing_efficiency",
                "waves",
                "verdict",
                "verdict_share",
                "breakdown_ms",
            ] {
                assert!(row.get(key).is_some(), "missing key {key}");
            }
        }
    }
}
