//! Observability for the cuSZ-i reproduction — zero-cost when disabled.
//!
//! Three instruments behind one switch:
//!
//! 1. a lock-free per-thread span [`tracer`] (begin/end stage spans,
//!    complete kernel events) exporting Chrome `trace_event` JSON that
//!    loads in Perfetto, plus a flamegraph-style text summary;
//! 2. a per-kernel profile table ([`kernels::KernelTable`]) fed by the
//!    `gpu-sim` launch hook: measured [`cuszi_gpu_sim::KernelStats`]
//!    with the roofline decomposition, achieved GB/s vs the bandwidth
//!    ceiling, coalescing efficiency, DRAM excess bytes, occupancy
//!    waves, and a bottleneck verdict per kernel;
//! 3. a [`metrics`] registry of monotonic counters and histograms
//!    (bytes in/out, per-field compression ratio, outlier rate,
//!    codebook entropy).
//!
//! Instrumented code calls the free functions here ([`span`],
//! [`count`], [`observe`]) or goes through the [`ProfileSink`] trait
//! when it wants an injectable handle. When profiling is off — the
//! default — every hook is a single relaxed atomic load; no clock is
//! read, no string is formatted, no lock is taken. Turn it on with
//! [`install`] + [`enable`], or ambiently via `CUSZI_PROFILE=1` and
//! [`init_from_env`].

pub mod flight;
pub mod kernels;
pub mod metrics;
pub mod minjson;
pub mod trace_json;
pub mod tracer;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cuszi_gpu_sim::hook::{self, LaunchObserver, LaunchRecord};
use cuszi_gpu_sim::timing::TimingModel;

pub use flight::{FlightEvent, FlightKind};
pub use kernels::{KernelRow, KernelTable};
pub use metrics::{Registry, Snapshot};
pub use tracer::{Category, Event, Tracer};

/// Sink interface for instrumented code that wants an injected handle
/// instead of the process-global profiler (tests inject their own; the
/// pipeline's hooks go through the same trait either way).
pub trait ProfileSink: Send + Sync {
    /// Open a span on the calling thread.
    fn span_begin(&self, name: &str, cat: Category);
    /// Close the most recent span with this name on the calling thread.
    fn span_end(&self, name: &str, cat: Category);
    /// Add to a monotonic counter.
    fn count(&self, name: &str, delta: u64);
    /// Record a histogram sample.
    fn observe(&self, name: &str, value: u64);
}

/// The process profiler: tracer + kernel table + metrics registry.
pub struct Profiler {
    tracer: Tracer,
    kernels: Mutex<KernelTable>,
    metrics: Registry,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    pub fn new() -> Self {
        Profiler {
            tracer: Tracer::default(),
            kernels: Mutex::new(KernelTable::new()),
            metrics: Registry::new(),
        }
    }

    /// The span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Record a kernel launch (normally driven by the gpu-sim hook).
    pub fn record_launch(&self, rec: &LaunchRecord<'_>) {
        self.kernels.lock().unwrap().record(rec);
        // A launch issued on a gpu-sim stream arrives on that stream's
        // worker thread; naming the lane after the stream gives the
        // trace one Perfetto lane per stream.
        if let Some((_, label)) = rec.stream {
            self.tracer.label_current_thread(label);
        }
        // Mirror the launch into the trace as a complete event whose
        // duration is the *simulated* kernel time — what the timeline
        // should show for a modelled GPU.
        let sim_ns = TimingModel::new(*rec.device).kernel_time(&rec.stats) * 1e9;
        self.tracer.complete(rec.name, Category::Kernel, sim_ns as u64);
    }

    /// Drain everything recorded so far into a [`Report`].
    ///
    /// Call after the profiled workload has returned (recording threads
    /// quiescent); the profiler is left empty for the next capture.
    pub fn report(&self) -> Report {
        let (events, dropped) = self.tracer.take_events();
        Report {
            events,
            dropped_events: dropped,
            thread_labels: self.tracer.thread_labels(),
            kernels: self.kernels.lock().unwrap().take(),
            metrics: self.metrics.take(),
        }
    }
}

impl ProfileSink for Profiler {
    fn span_begin(&self, name: &str, cat: Category) {
        self.tracer.begin(name, cat);
    }
    fn span_end(&self, name: &str, cat: Category) {
        self.tracer.end(name, cat);
    }
    fn count(&self, name: &str, delta: u64) {
        self.metrics.count(name, delta);
    }
    fn observe(&self, name: &str, value: u64) {
        self.metrics.observe(name, value);
    }
}

/// One drained capture: everything needed to write the artifacts.
pub struct Report {
    pub events: Vec<Event>,
    pub dropped_events: u64,
    /// `(tid, lane label)` pairs — one per gpu-sim stream observed.
    pub thread_labels: Vec<(u32, String)>,
    pub kernels: Vec<KernelRow>,
    pub metrics: Snapshot,
}

impl Report {
    /// Chrome `trace_event` JSON (Perfetto-loadable; stream lanes are
    /// named via `thread_name` metadata).
    pub fn chrome_trace(&self) -> String {
        trace_json::chrome_trace(&self.events, self.dropped_events, &self.thread_labels)
    }

    /// Flamegraph-style indented text summary of the spans.
    pub fn flame_summary(&self) -> String {
        trace_json::flame_summary_labeled(&self.events, &self.thread_labels)
    }

    /// Nsight-style kernel table text report.
    pub fn kernel_report(&self) -> String {
        let mut t = KernelTable::new();
        // Rebuild a table view over the drained rows.
        t.restore(self.kernels.clone());
        t.render()
    }

    /// Combined JSON document: kernel table + metrics + trace metadata
    /// (the `profile_<n>.json` payload).
    pub fn to_json(&self) -> String {
        let mut kt = KernelTable::new();
        kt.restore(self.kernels.clone());
        format!(
            "{{\n\"kernels\": {},\n\"metrics\": {},\n\"trace\": {{\"events\": {}, \"dropped\": {}}}\n}}",
            kt.to_json(),
            self.metrics.to_json(),
            self.events.len(),
            self.dropped_events,
        )
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PROFILER: OnceLock<Profiler> = OnceLock::new();

struct HookAdapter;

impl LaunchObserver for HookAdapter {
    fn on_launch(&self, rec: &LaunchRecord<'_>) {
        if let Some(p) = PROFILER.get() {
            p.record_launch(rec);
        }
    }
}

/// Install the process-global profiler and register it as the gpu-sim
/// launch observer. Idempotent; recording stays off until [`enable`].
pub fn install() -> &'static Profiler {
    let p = PROFILER.get_or_init(Profiler::new);
    hook::set_observer(Box::new(HookAdapter));
    p
}

/// The installed profiler, if any.
pub fn profiler() -> Option<&'static Profiler> {
    PROFILER.get()
}

/// Turn recording on or off (span hooks here and the launch hook in
/// gpu-sim flip together).
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
    hook::enable(on);
}

/// Whether recording is on. One relaxed load — this is the entire cost
/// of every hook when profiling is disabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install and enable if `CUSZI_PROFILE` is set to a truthy value
/// (`1`, `true`, `on`, or a path). Returns whether profiling is on.
pub fn init_from_env() -> bool {
    match std::env::var("CUSZI_PROFILE") {
        Ok(v) if !v.is_empty() && v != "0" && v.to_lowercase() != "false" => {
            install();
            enable(true);
            true
        }
        _ => false,
    }
}

/// RAII span: records begin on creation and end on drop (including
/// unwind paths, so a panicking stage still closes its span). When
/// profiling is disabled this is a no-op carrying no clock reads.
pub struct SpanGuard {
    name: Option<tracer::SmallName>,
    cat: Category,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(name), Some(p)) = (self.name, PROFILER.get()) {
            p.tracer.end(name.as_str(), self.cat);
        }
    }
}

/// Open a named span in the global profiler. `let _g = span("x", ...)`;
/// the span closes when the guard drops.
#[inline]
pub fn span(name: &str, cat: Category) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name: None, cat };
    }
    span_slow(name, cat)
}

#[cold]
fn span_slow(name: &str, cat: Category) -> SpanGuard {
    match PROFILER.get() {
        Some(p) => {
            p.tracer.begin(name, cat);
            SpanGuard { name: Some(tracer::SmallName::new(name)), cat }
        }
        None => SpanGuard { name: None, cat },
    }
}

/// Count of live [`MetricsScope`]s across all threads. One relaxed
/// load keeps the no-scope fast path of [`count`]/[`observe`] free of
/// thread-local traffic.
static ACTIVE_SCOPES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Registries scoped onto this thread (innermost last). Metric
    /// records fan out to every scoped registry in addition to the
    /// global profiler, so an engine can capture per-request and
    /// per-engine views of the same stage-level counters without the
    /// process-global registry bleeding jobs into each other.
    static SCOPES: RefCell<Vec<Arc<Registry>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a scoped registry (see [`scope`]).
pub struct MetricsScope {
    _priv: (),
}

impl Drop for MetricsScope {
    fn drop(&mut self) {
        SCOPES.with(|s| {
            s.borrow_mut().pop();
        });
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Route this thread's [`count`]/[`observe`] calls into `reg` (in
/// addition to any outer scopes and the global profiler) until the
/// returned guard drops. Scopes nest: an engine typically installs its
/// per-engine registry and a per-request registry for the same job, so
/// one stage-level record lands in both.
pub fn scope(reg: Arc<Registry>) -> MetricsScope {
    ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
    SCOPES.with(|s| s.borrow_mut().push(reg));
    MetricsScope { _priv: () }
}

/// Whether the calling thread has at least one scoped registry.
pub fn scope_active() -> bool {
    ACTIVE_SCOPES.load(Ordering::Relaxed) != 0 && SCOPES.with(|s| !s.borrow().is_empty())
}

/// Whether a [`count`]/[`observe`] call would record anywhere — the
/// global profiler ([`enabled`]) or a scoped registry. Call sites that
/// precompute metric values guard on this instead of [`enabled`] so
/// scoped (per-request) recording works with the profiler off.
#[inline]
pub fn metrics_active() -> bool {
    enabled() || scope_active()
}

/// Fan a metric record out to this thread's scoped registries.
#[cold]
fn record_scoped(name: &str, value: u64, histogram: bool) {
    SCOPES.with(|s| {
        for r in s.borrow().iter() {
            if histogram {
                r.observe(name, value);
            } else {
                r.count(name, value);
            }
        }
    });
}

/// Add to a global monotonic counter (and any scoped registries;
/// no-op when disabled and unscoped).
#[inline]
pub fn count(name: &str, delta: u64) {
    if enabled() {
        if let Some(p) = PROFILER.get() {
            p.metrics.count(name, delta);
        }
    }
    if ACTIVE_SCOPES.load(Ordering::Relaxed) != 0 {
        record_scoped(name, delta, false);
    }
}

/// Record a global histogram sample (and any scoped registries;
/// no-op when disabled and unscoped).
#[inline]
pub fn observe(name: &str, value: u64) {
    if enabled() {
        if let Some(p) = PROFILER.get() {
            p.metrics.observe(name, value);
        }
    }
    if ACTIVE_SCOPES.load(Ordering::Relaxed) != 0 {
        record_scoped(name, value, true);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_hooks_are_nearly_free() {
        // Not installed, not enabled: a hook call must not allocate,
        // lock, or read the clock. Time 1M calls as a sanity ceiling.
        assert!(!enabled());
        let t0 = std::time::Instant::now();
        for i in 0..1_000_000u64 {
            let _g = span("stage", Category::Stage);
            count("bytes", i);
        }
        let per_call = t0.elapsed().as_nanos() as f64 / 1e6;
        // Generous bound (CI machines vary): well under 100ns per pair.
        assert!(per_call < 100.0, "disabled hook cost {per_call} ns");
    }

    #[test]
    fn scoped_registries_capture_without_profiler() {
        // Profiler off: records land only in the scoped registries,
        // innermost and outer both, and stop at guard drop.
        assert!(!enabled());
        let engine = Arc::new(Registry::new());
        let request = Arc::new(Registry::new());
        {
            let _e = scope(Arc::clone(&engine));
            assert!(metrics_active(), "a scope alone activates metrics");
            {
                let _r = scope(Arc::clone(&request));
                count("bytes", 10);
                observe("cr", 4);
            }
            count("bytes", 5); // after the request scope closed
        }
        assert!(!metrics_active());
        count("bytes", 99); // unscoped: dropped
        assert_eq!(engine.snapshot().counters["bytes"], 15);
        assert_eq!(request.snapshot().counters["bytes"], 10);
        assert_eq!(request.snapshot().histograms["cr"].count, 1);
    }

    #[test]
    fn profiler_collects_spans_metrics_and_reports() {
        let p = Profiler::new();
        p.span_begin("compress", Category::Stage);
        p.span_end("compress", Category::Stage);
        p.count("bytes_in", 4096);
        p.observe("cr_ppt", 123_000);
        let rep = p.report();
        assert_eq!(rep.events.len(), 2);
        assert_eq!(rep.metrics.counters["bytes_in"], 4096);
        let json = rep.to_json();
        let v = minjson::parse(&json).expect("valid json");
        assert!(v.get("kernels").is_some());
        assert!(v.get("metrics").is_some());
        // Second report is empty: report() drains.
        let rep2 = p.report();
        assert!(rep2.events.is_empty() && rep2.kernels.is_empty());
    }
}
