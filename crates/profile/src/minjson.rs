//! A minimal JSON parser — just enough to validate the profiler's own
//! output in tests and tooling. The workspace is deliberately
//! dependency-free, so this stands in for `serde_json`.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(BTreeMap<String, Value>),
}

impl Value {
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup (None for non-objects/missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document.
pub fn parse(src: &str) -> Result<Value, String> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|e| format!("bad number {text:?}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("short \\u escape".into());
                            }
                            let hex =
                                std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|_| "bad \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates are not reassembled — the
                            // profiler never emits them.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape '\\{}'", other as char)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8")?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = parse(r#"{"a": [1, -2.5e1, "x\ny", true, null], "b": {}}"#).unwrap();
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[0].as_f64(), Some(1.0));
        assert_eq!(a[1].as_f64(), Some(-25.0));
        assert_eq!(a[2].as_str(), Some("x\ny"));
        assert_eq!(a[3], Value::Bool(true));
        assert_eq!(a[4], Value::Null);
        assert!(v.get("b").unwrap().as_object().unwrap().is_empty());
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#"{"k" 1}"#).is_err());
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"A\\u00e9é\"").unwrap();
        assert_eq!(v.as_str(), Some("Aéé"));
    }
}
