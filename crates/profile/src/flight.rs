//! The flight recorder: an always-on, fixed-capacity black box.
//!
//! Unlike the opt-in span [`crate::tracer`] (enabled per run via
//! `--profile` / `CUSZI_PROFILE`), the flight recorder is **on by
//! default** and cheap enough to stay on in production: every stage
//! begin/end, named kernel launch, sampled pooled allocation, stream
//! operation, and fault arm/trip is recorded into a per-thread
//! lock-free seqlock ring ([`crate::tracer::Ring`]) at roughly one
//! relaxed atomic store plus a clock read per event. A full ring wraps
//! and overwrites the oldest events — the recorder never blocks or
//! allocates on the hot path, and never grows without bound (rings are
//! recycled through a free list as threads exit, so memory is bounded
//! by the peak number of concurrently recording threads).
//!
//! When a `CuszError` propagates out of the pipeline, the rings are
//! drained into a `flight_<pid>_<seq>.json` dump — the aviation black
//! box: the last [`DUMP_TAIL`] events before the failure, with exact
//! stage attribution (and the failing job/tenant id when an engine set
//! one via [`job_scope`]), parseable by [`crate::minjson`]. The
//! sequence number makes every failure in a long-lived server its own
//! dump; at most [`DUMP_KEEP`] are retained (oldest evicted).
//! Fault-matrix failures and production incidents get full forensics
//! without anyone having asked for a trace beforehand.
//!
//! Set `CUSZI_FLIGHT=0` to disable recording entirely;
//! `CUSZI_FLIGHT_DIR` overrides where dumps are written (default: the
//! system temp directory).

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use cuszi_gpu_sim::hook::{self, FlightSignal};

use crate::tracer::{global_epoch, Ring, SmallName};

/// Events per recording thread. Fixed at construction; wraparound
/// overwrites the oldest events.
pub const RING_CAPACITY: usize = 2048;

/// Maximum events written to one dump (the newest win). Keeps
/// error-path dumps small even when the rings are full.
pub const DUMP_TAIL: usize = 512;

/// Maximum dumps kept on disk per process. A long-lived server handles
/// many failing jobs; each failure gets its *own* sequenced dump
/// (`flight_<pid>_<seq>.json` — the old one-file-per-process name made
/// a second failure overwrite the first), and once more than this many
/// exist the oldest is deleted so a crash-looping tenant cannot fill
/// the disk.
pub const DUMP_KEEP: usize = 8;

/// What a flight event describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlightKind {
    /// A pipeline stage started (`name` = stage label).
    StageBegin,
    /// A pipeline stage finished.
    StageEnd,
    /// A named kernel launch completed (`arg` = stream id + 1, 0 when
    /// launched inline on the host thread).
    Launch,
    /// A launch the fault injector dropped — the grid never ran.
    LaunchDropped,
    /// A sampled pooled/arena allocation (`arg` = true running count).
    Alloc,
    /// A stream lifecycle/sync operation (`name` = op, `arg` = id).
    StreamOp,
    /// A fault spec was armed (`name` = spec text).
    FaultArmed,
    /// A fault tripped sticky (`name` = tripping site).
    FaultTripped,
    /// A `CuszError` propagated (`name` = owning stage label). Recorded
    /// by [`dump_on_error`] immediately before the dump, so it is the
    /// final event of every dump.
    Error,
}

impl FlightKind {
    /// The `kind` string used in dumps.
    pub fn label(&self) -> &'static str {
        match self {
            FlightKind::StageBegin => "stage-begin",
            FlightKind::StageEnd => "stage-end",
            FlightKind::Launch => "launch",
            FlightKind::LaunchDropped => "launch-dropped",
            FlightKind::Alloc => "alloc",
            FlightKind::StreamOp => "stream-op",
            FlightKind::FaultArmed => "fault-armed",
            FlightKind::FaultTripped => "fault-tripped",
            FlightKind::Error => "error",
        }
    }
}

/// One recorded flight event — fixed-size and `Copy` so a wrapped ring
/// slot never tears a heap pointer (same discipline as the tracer).
#[derive(Clone, Copy, Debug)]
pub struct FlightEvent {
    pub kind: FlightKind,
    pub name: SmallName,
    /// Dense recorder slot id (recycled across threads; not the OS tid).
    pub tid: u32,
    /// The simulated device the recording thread was bound to
    /// ([`cuszi_gpu_sim::current_device`]; 0 for single-device runs).
    /// This is what lets a dump attribute a fault to a device.
    pub dev: u32,
    /// Nanoseconds since the process profiling epoch.
    pub ts_ns: u64,
    /// Kind-specific argument (stream id, allocation count, …).
    pub arg: u64,
}

/// Ring registry: every ring ever created plus a free list of rings
/// whose owning thread has exited. A new recording thread reuses a free
/// ring before creating one, so the registry — and recorder memory —
/// is bounded by the peak number of concurrently recording threads,
/// not the total number of threads over the process lifetime (kernel
/// workers are scoped per launch).
struct Recorder {
    rings: Mutex<Vec<Arc<Ring<FlightEvent>>>>,
    free: Mutex<Vec<Arc<Ring<FlightEvent>>>>,
    next_tid: AtomicUsize,
}

static RECORDER: OnceLock<Recorder> = OnceLock::new();
/// Serializes dump writes (two stream workers may fail concurrently).
static DUMP_LOCK: Mutex<()> = Mutex::new(());
/// Monotonic per-process dump sequence; baked into every dump name so
/// one process handling many failing jobs never overwrites evidence.
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);
/// Dumps written by this process, oldest first (the eviction queue).
static WRITTEN: Mutex<VecDeque<PathBuf>> = Mutex::new(VecDeque::new());

thread_local! {
    /// The engine job executing on this thread, if any: `(job id,
    /// tenant)`. Stamped into dumps so a server operator can tell
    /// *whose* request crashed.
    static JOB_CTX: Cell<Option<(u64, SmallName)>> = const { Cell::new(None) };
}

/// RAII guard for the per-thread job/tenant context (see [`job_scope`]).
pub struct JobScope {
    prev: Option<(u64, SmallName)>,
}

impl Drop for JobScope {
    fn drop(&mut self) {
        JOB_CTX.with(|c| c.set(self.prev));
    }
}

/// Tag this thread with the engine job it is executing. Every flight
/// dump written while the guard lives carries a `"job": {"id", "tenant"}`
/// block. Nests (the previous context is restored on drop).
pub fn job_scope(job_id: u64, tenant: &str) -> JobScope {
    let prev = JOB_CTX.with(|c| c.replace(Some((job_id, SmallName::new(tenant)))));
    JobScope { prev }
}

/// The job context of the calling thread, if one is set.
pub fn current_job() -> Option<(u64, String)> {
    JOB_CTX.with(|c| c.get()).map(|(id, t)| (id, t.as_str().to_string()))
}

fn recorder() -> &'static Recorder {
    RECORDER.get_or_init(|| Recorder {
        rings: Mutex::new(Vec::new()),
        free: Mutex::new(Vec::new()),
        next_tid: AtomicUsize::new(0),
    })
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Thread-local ring handle; returns the ring to the free list when the
/// thread exits so the next thread reuses it.
struct RingHandle {
    ring: Arc<Ring<FlightEvent>>,
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        if let Some(rec) = RECORDER.get() {
            lock(&rec.free).push(Arc::clone(&self.ring));
        }
    }
}

thread_local! {
    static MY_RING: RefCell<Option<RingHandle>> = const { RefCell::new(None) };
}

/// Whether the recorder is on. Always-on by default; `CUSZI_FLIGHT=0`
/// (or `false`/`off`) disables it for the whole process. Decided once.
pub fn enabled() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| match std::env::var("CUSZI_FLIGHT") {
        Ok(v) => !(v == "0" || v.eq_ignore_ascii_case("false") || v.eq_ignore_ascii_case("off")),
        Err(_) => true,
    })
}

/// Record one event on the calling thread. Lock-free after the thread's
/// first event (which registers or recycles a ring).
pub fn record(kind: FlightKind, name: &str, arg: u64) {
    if !enabled() {
        return;
    }
    let ts_ns = global_epoch().elapsed().as_nanos() as u64;
    let dev = cuszi_gpu_sim::current_device() as u32;
    MY_RING.with(|cell| {
        let mut local = cell.borrow_mut();
        if local.is_none() {
            // Cold path: first event from this thread.
            let rec = recorder();
            let ring = lock(&rec.free).pop().unwrap_or_else(|| {
                let tid = rec.next_tid.fetch_add(1, Ordering::Relaxed) as u32;
                let ring = Arc::new(Ring::new(tid, RING_CAPACITY));
                lock(&rec.rings).push(Arc::clone(&ring));
                ring
            });
            *local = Some(RingHandle { ring });
        }
        if let Some(h) = local.as_ref() {
            h.ring.push(FlightEvent {
                kind,
                name: SmallName::new(name),
                tid: h.ring.tid,
                dev,
                ts_ns,
                arg,
            });
        }
    });
}

/// Record a stage begin (core calls this at every stage boundary).
pub fn stage_begin(label: &str) {
    record(FlightKind::StageBegin, label, 0);
}

/// Record a stage end.
pub fn stage_end(label: &str) {
    record(FlightKind::StageEnd, label, 0);
}

/// Per-device launch-count metric names, pre-rendered so the always-on
/// hook never formats on the hot path (index = device id).
const DEVICE_LAUNCH_COUNTERS: [&str; cuszi_gpu_sim::MAX_DEVICES] = [
    "gpu.dev0.launches",
    "gpu.dev1.launches",
    "gpu.dev2.launches",
    "gpu.dev3.launches",
    "gpu.dev4.launches",
    "gpu.dev5.launches",
    "gpu.dev6.launches",
    "gpu.dev7.launches",
];

/// Forward gpu-sim flight signals into the recorder.
fn on_signal(sig: &FlightSignal<'_>) {
    match *sig {
        FlightSignal::Launch { name, stream, dropped } => {
            if !dropped {
                let dev = cuszi_gpu_sim::current_device().min(DEVICE_LAUNCH_COUNTERS.len() - 1);
                crate::count(DEVICE_LAUNCH_COUNTERS[dev], 1);
            }
            record(
                if dropped { FlightKind::LaunchDropped } else { FlightKind::Launch },
                name,
                stream.map(|i| i as u64 + 1).unwrap_or(0),
            )
        }
        FlightSignal::Alloc { seq } => record(FlightKind::Alloc, "pool", seq),
        FlightSignal::Stream { op, id } => record(FlightKind::StreamOp, op, id as u64),
        FlightSignal::FaultArmed { site } => record(FlightKind::FaultArmed, site, 0),
        FlightSignal::FaultTripped { site } => record(FlightKind::FaultTripped, site, 0),
    }
}

/// Register the recorder as gpu-sim's flight hook. Idempotent; a no-op
/// when `CUSZI_FLIGHT=0`. Called by core at pipeline entry, so any
/// front end gets substrate events without explicit setup.
pub fn install() {
    if enabled() {
        hook::set_flight_hook(on_signal);
    }
}

/// All events currently held in the rings (oldest lost to wraparound),
/// sorted by timestamp, plus how many were lost. Non-destructive —
/// unlike [`crate::Tracer::take_events`], a dump must not consume the
/// evidence a second failure might need.
pub fn snapshot() -> (Vec<FlightEvent>, u64) {
    let Some(rec) = RECORDER.get() else {
        return (Vec::new(), 0);
    };
    let rings: Vec<Arc<Ring<FlightEvent>>> = lock(&rec.rings).iter().map(Arc::clone).collect();
    let mut out = Vec::new();
    let mut dropped = 0u64;
    for ring in rings {
        let (evs, head) = ring.snapshot(0);
        dropped += head.saturating_sub(evs.len() as u64);
        out.extend(evs);
    }
    out.sort_by_key(|e| e.ts_ns);
    (out, dropped)
}

/// Where dumps land: `CUSZI_FLIGHT_DIR` or the system temp directory.
pub fn dump_dir() -> PathBuf {
    std::env::var_os("CUSZI_FLIGHT_DIR").map(PathBuf::from).unwrap_or_else(std::env::temp_dir)
}

/// The dump path for one sequenced failure:
/// `<dir>/flight_<pid>_<seq>.json`.
fn dump_path_for(seq: u64) -> PathBuf {
    dump_dir().join(format!("flight_{}_{seq:04}.json", std::process::id()))
}

/// The most recent dump written by this process, if any.
pub fn latest_dump() -> Option<PathBuf> {
    lock(&WRITTEN).back().cloned()
}

/// Every dump this process has written and not yet evicted, oldest
/// first (at most [`DUMP_KEEP`]).
pub fn written_dumps() -> Vec<PathBuf> {
    lock(&WRITTEN).iter().cloned().collect()
}

/// Delete this process's dumps and forget them — test hygiene, so a
/// later assertion cannot pass on a stale black box.
pub fn clear_dumps() {
    let mut w = lock(&WRITTEN);
    for p in w.drain(..) {
        let _ = std::fs::remove_file(p);
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

/// Render a dump document (the newest [`DUMP_TAIL`] events) as JSON.
/// `job` is the failing thread's job/tenant context, if any.
pub fn render_dump(error: Option<(&str, &str)>, job: Option<(u64, &str)>) -> String {
    let (mut events, dropped) = snapshot();
    // A black box ends at its failure: truncate anything another thread
    // recorded between this error and the snapshot (concurrent stream
    // jobs can fail and keep recording simultaneously), so the terminal
    // event of the dump is always the error it reports.
    if let Some((stage, _)) = error {
        if let Some(at) = events
            .iter()
            .rposition(|e| e.kind == FlightKind::Error && e.name.as_str() == stage)
        {
            events.truncate(at + 1);
        }
    }
    let skip = events.len().saturating_sub(DUMP_TAIL);
    let mut out = String::with_capacity(64 * (events.len() - skip) + 256);
    out.push_str("{\n");
    out.push_str(&format!("\"pid\": {},\n", std::process::id()));
    out.push_str(&format!("\"dropped\": {},\n", dropped + skip as u64));
    match job {
        Some((id, tenant)) => {
            out.push_str(&format!("\"job\": {{\"id\": {id}, \"tenant\": \""));
            escape_into(&mut out, tenant);
            out.push_str("\"},\n");
        }
        None => out.push_str("\"job\": null,\n"),
    }
    match error {
        Some((stage, detail)) => {
            out.push_str("\"error\": {\"stage\": \"");
            escape_into(&mut out, stage);
            out.push_str("\", \"detail\": \"");
            escape_into(&mut out, detail);
            out.push_str("\"},\n");
        }
        None => out.push_str("\"error\": null,\n"),
    }
    out.push_str("\"events\": [");
    for (i, ev) in events[skip..].iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"ts_ns\": {}, \"tid\": {}, \"dev\": {}, \"kind\": \"{}\", \"name\": \"",
            ev.ts_ns,
            ev.tid,
            ev.dev,
            ev.kind.label()
        ));
        escape_into(&mut out, ev.name.as_str());
        out.push_str(&format!("\", \"arg\": {}}}", ev.arg));
    }
    out.push_str("\n]\n}\n");
    out
}

/// Record the terminal [`FlightKind::Error`] event (stage-attributed)
/// and write the black-box dump for this process. Returns the dump path
/// on success, `None` when recording is disabled or the write failed —
/// the error path must never turn a typed error into a panic.
pub fn dump_on_error(stage: &str, detail: &str) -> Option<PathBuf> {
    if !enabled() {
        return None;
    }
    // Record the terminal event under the dump lock so two concurrently
    // failing threads each capture a dump ending at their own error.
    let _g = lock(&DUMP_LOCK);
    record(FlightKind::Error, stage, 0);
    let job = JOB_CTX.with(|c| c.get());
    let doc = render_dump(Some((stage, detail)), job.as_ref().map(|(id, t)| (*id, t.as_str())));
    let seq = DUMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let path = dump_path_for(seq);
    let tmp = path.with_extension("json.tmp");
    let write = || -> std::io::Result<()> {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(doc.as_bytes())?;
        std::fs::rename(&tmp, &path)
    };
    match write() {
        Ok(()) => {
            let mut w = lock(&WRITTEN);
            w.push_back(path.clone());
            // Over-capacity eviction: a server that keeps failing must
            // not fill the disk with black boxes — keep the newest
            // DUMP_KEEP, delete the rest.
            while w.len() > DUMP_KEEP {
                if let Some(old) = w.pop_front() {
                    let _ = std::fs::remove_file(old);
                }
            }
            Some(path)
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Flight state is process-global; tests in this module serialize.
    static GUARD: Mutex<()> = Mutex::new(());

    #[test]
    fn records_and_snapshots_in_order() {
        let _g = lock(&GUARD);
        record(FlightKind::StageBegin, "predict-quant", 0);
        record(FlightKind::Launch, "g-interp", 0);
        record(FlightKind::StageEnd, "predict-quant", 0);
        let (evs, _) = snapshot();
        let mine: Vec<&FlightEvent> =
            evs.iter().filter(|e| e.name.as_str() == "predict-quant" || e.name.as_str() == "g-interp").collect();
        assert!(mine.len() >= 3);
        let tail = &mine[mine.len() - 3..];
        assert_eq!(tail[0].kind, FlightKind::StageBegin);
        assert_eq!(tail[1].kind, FlightKind::Launch);
        assert_eq!(tail[2].kind, FlightKind::StageEnd);
        assert!(tail[0].ts_ns <= tail[1].ts_ns && tail[1].ts_ns <= tail[2].ts_ns);
    }

    #[test]
    fn wraparound_keeps_newest_and_counts_dropped() {
        let _g = lock(&GUARD);
        let (_, dropped_before) = snapshot();
        for i in 0..(RING_CAPACITY + 100) {
            record(FlightKind::Alloc, "wrap-test", i as u64);
        }
        let (evs, dropped) = snapshot();
        assert!(dropped >= dropped_before + 100, "overflow must be counted");
        // The newest event survives.
        let newest = evs
            .iter()
            .filter(|e| e.name.as_str() == "wrap-test")
            .map(|e| e.arg)
            .max()
            .unwrap();
        assert_eq!(newest, (RING_CAPACITY + 100 - 1) as u64);
    }

    #[test]
    fn dump_is_parseable_and_error_event_is_last() {
        let _g = lock(&GUARD);
        let dir = std::env::temp_dir().join(format!("cuszi-flight-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        record(FlightKind::Launch, "g-interp", 0);
        let doc = {
            record(FlightKind::Error, "predict-quant", 0);
            render_dump(Some(("predict-quant", "stage 'predict-quant' failed")), None)
        };
        let v = crate::minjson::parse(&doc).expect("dump is valid JSON");
        assert_eq!(
            v.get("error").and_then(|e| e.get("stage")).and_then(|s| s.as_str()),
            Some("predict-quant")
        );
        let events = v.get("events").and_then(|e| e.as_array()).expect("events array");
        assert!(!events.is_empty());
        let last = events.last().unwrap();
        assert_eq!(last.get("kind").and_then(|k| k.as_str()), Some("error"));
        assert_eq!(last.get("name").and_then(|k| k.as_str()), Some("predict-quant"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn sequenced_dumps_do_not_collide_and_evict_beyond_cap() {
        let _g = lock(&GUARD);
        let dir = std::env::temp_dir().join(format!("cuszi-flight-seq-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CUSZI_FLIGHT_DIR", &dir);
        clear_dumps();
        // Two failures in one process: two distinct parseable dumps.
        let a = dump_on_error("predict-quant", "first").expect("first dump");
        let b = dump_on_error("histogram", "second").expect("second dump");
        assert_ne!(a, b, "sequenced dump names must not collide");
        assert!(a.exists() && b.exists(), "both dumps survive");
        for (p, stage) in [(&a, "predict-quant"), (&b, "histogram")] {
            let txt = std::fs::read_to_string(p).unwrap();
            let v = crate::minjson::parse(&txt).expect("dump parses");
            assert_eq!(
                v.get("error").and_then(|e| e.get("stage")).and_then(|s| s.as_str()),
                Some(stage),
                "{}",
                p.display()
            );
        }
        assert_eq!(latest_dump().as_ref(), Some(&b));
        // Over-capacity eviction: only the newest DUMP_KEEP survive.
        for i in 0..(DUMP_KEEP + 3) {
            dump_on_error("predict-quant", &format!("flood {i}")).expect("dump");
        }
        let kept = written_dumps();
        assert_eq!(kept.len(), DUMP_KEEP);
        assert!(kept.iter().all(|p| p.exists()));
        assert!(!a.exists() && !b.exists(), "oldest dumps evicted");
        clear_dumps();
        std::env::remove_var("CUSZI_FLIGHT_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dumps_carry_the_job_context() {
        let _g = lock(&GUARD);
        let dir = std::env::temp_dir().join(format!("cuszi-flight-job-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("CUSZI_FLIGHT_DIR", &dir);
        assert_eq!(current_job(), None);
        let with_job = {
            let _scope = job_scope(42, "tenant-a");
            assert_eq!(current_job(), Some((42, "tenant-a".to_string())));
            dump_on_error("predict-quant", "job-tagged").expect("dump")
        };
        assert_eq!(current_job(), None, "job scope restored on drop");
        let without_job = dump_on_error("predict-quant", "untagged").expect("dump");
        let v = crate::minjson::parse(&std::fs::read_to_string(&with_job).unwrap()).unwrap();
        let job = v.get("job").expect("job block");
        assert_eq!(job.get("id").and_then(|x| x.as_f64()), Some(42.0));
        assert_eq!(job.get("tenant").and_then(|x| x.as_str()), Some("tenant-a"));
        let v2 = crate::minjson::parse(&std::fs::read_to_string(&without_job).unwrap()).unwrap();
        assert!(
            v2.get("job").is_some_and(|j| matches!(j, crate::minjson::Value::Null)),
            "no context -> job: null"
        );
        clear_dumps();
        std::env::remove_var("CUSZI_FLIGHT_DIR");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn events_are_stamped_with_the_recording_device() {
        let _g = lock(&GUARD);
        cuszi_gpu_sim::on_device(2, || record(FlightKind::Launch, "dev-stamp-probe", 0));
        record(FlightKind::Launch, "dev-stamp-host", 0);
        let (evs, _) = snapshot();
        let on_dev =
            evs.iter().rev().find(|e| e.name.as_str() == "dev-stamp-probe").expect("recorded");
        assert_eq!(on_dev.dev, 2, "event carries the binding of its recording thread");
        let on_host =
            evs.iter().rev().find(|e| e.name.as_str() == "dev-stamp-host").expect("recorded");
        assert_eq!(on_host.dev, 0, "unbound threads are device 0");
        let doc = render_dump(None, None);
        let v = crate::minjson::parse(&doc).expect("dump parses");
        let events = v.get("events").and_then(|e| e.as_array()).expect("events");
        assert!(
            events.iter().any(|e| {
                e.get("name").and_then(|n| n.as_str()) == Some("dev-stamp-probe")
                    && e.get("dev").and_then(|d| d.as_f64()) == Some(2.0)
            }),
            "dump events carry the device id"
        );
    }

    #[test]
    fn rings_are_recycled_across_threads() {
        let _g = lock(&GUARD);
        // Warm up: make sure this thread has its ring.
        record(FlightKind::StageBegin, "recycle-warm", 0);
        let before = lock(&recorder().rings).len();
        for _ in 0..32 {
            std::thread::spawn(|| {
                record(FlightKind::StageBegin, "recycle-probe", 0);
            })
            .join()
            .unwrap();
        }
        let after = lock(&recorder().rings).len();
        // 32 sequential short-lived threads must not create 32 rings:
        // each exiting thread frees its ring for the next to reuse.
        assert!(
            after <= before + 2,
            "ring registry grew from {before} to {after} over 32 recycled threads"
        );
    }
}
