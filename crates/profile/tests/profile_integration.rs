//! End-to-end tests of the global profiler against real `gpu-sim`
//! launches: golden Chrome-trace schema and kernel-table determinism.
//!
//! These live in their own integration binary (own process) because
//! they install and toggle the process-global profiler/launch hook.

use std::sync::Mutex;

use cuszi_gpu_sim::{launch_named, GlobalRead, GlobalWrite, Grid, A100};
use cuszi_profile as profile;
use cuszi_profile::{minjson, Category};

/// The profiler and launch hook are process-global; serialise the tests
/// that toggle them.
static TEST_LOCK: Mutex<()> = Mutex::new(());

/// One deterministic workload: two named kernels under a stage span.
fn run_workload() -> profile::Report {
    let p = profile::profiler().expect("profiler installed");
    {
        let _stage = profile::span("compress", Category::Stage);
        let input: Vec<f32> = (0..4096).map(|i| i as f32).collect();
        let mut output = vec![0.0f32; input.len()];
        {
            let src = GlobalRead::new(&input);
            let dst = GlobalWrite::new(&mut output);
            launch_named(&A100, Grid::linear(16, 64), "copy-kernel", |ctx| {
                let b = ctx.block_linear() as usize;
                let chunk = 4096 / 16;
                let mut buf = ctx.scratch(chunk, 0.0f32);
                ctx.read_span(&src, b * chunk, &mut buf);
                ctx.add_flops(chunk as u64);
                ctx.write_span(&dst, b * chunk, &buf);
            });
        }
        {
            let _inner = profile::span("reduce", Category::Stage);
            let src = GlobalRead::new(&output);
            launch_named(&A100, Grid::linear(4, 32), "reduce-kernel", |ctx| {
                let b = ctx.block_linear() as usize;
                let chunk = 4096 / 4;
                let mut buf = ctx.scratch(chunk, 0.0f32);
                ctx.read_span(&src, b * chunk, &mut buf);
                ctx.add_flops(chunk as u64);
            });
        }
        profile::count("bytes_in", 4096 * 4);
        profile::observe("cr_ppt", 2500);
    }
    p.report()
}

#[test]
fn profiled_runs_emit_valid_traces_and_identical_kernel_tables() {
    let _lock = TEST_LOCK.lock().unwrap();
    profile::install();
    profile::enable(true);
    let rep1 = run_workload();
    let rep2 = run_workload();
    profile::enable(false);

    // --- Golden Chrome-trace schema -------------------------------
    let json = rep1.chrome_trace();
    let v = minjson::parse(&json).expect("trace is valid JSON");
    let events = v.get("traceEvents").expect("traceEvents key").as_array().unwrap();
    // 2 stage spans (B+E each) + 2 kernel X events.
    assert_eq!(events.len(), 6, "events: {json}");
    for ev in events {
        for key in ["name", "ph", "ts", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "event missing {key}: {json}");
        }
        let ph = ev.get("ph").unwrap().as_str().unwrap();
        assert!(matches!(ph, "B" | "E" | "X"), "bad ph {ph}");
        if ph == "X" {
            assert!(ev.get("dur").unwrap().as_f64().unwrap() > 0.0);
        }
    }
    let names: Vec<&str> =
        events.iter().map(|e| e.get("name").unwrap().as_str().unwrap()).collect();
    for expect in ["compress", "reduce", "copy-kernel", "reduce-kernel"] {
        assert!(names.contains(&expect), "missing {expect} in {names:?}");
    }

    // --- Kernel tables: identical across runs ---------------------
    assert_eq!(rep1.kernels.len(), 2);
    assert_eq!(rep2.kernels.len(), 2);
    for (a, b) in rep1.kernels.iter().zip(&rep2.kernels) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.launches, b.launches);
        assert_eq!(a.incomplete, 0);
        assert_eq!(a.stats, b.stats, "stats differ for {}", a.name);
        assert_eq!(a.breakdown, b.breakdown, "breakdown differs for {}", a.name);
        assert_eq!(a.sim_s(), b.sim_s());
        // Wall time is the one field allowed to differ between runs.
    }
    // The kernel rows carry real measured traffic.
    let copy = &rep1.kernels[0];
    assert_eq!(copy.name, "copy-kernel");
    assert_eq!(copy.stats.blocks, 16);
    assert!(copy.stats.dram_bytes() >= 2 * 4096 * 4);
    assert!(copy.achieved_gbps() > 0.0);

    // Whole-table text/JSON renders are identical too (wall time is
    // not part of the text report's columns... it is in JSON, so
    // compare text only).
    let mut t1 = profile::KernelTable::new();
    t1.restore(rep1.kernels.clone());
    let mut t2 = profile::KernelTable::new();
    t2.restore(rep2.kernels.clone());
    assert_eq!(t1.render(), t2.render());

    // --- Metrics --------------------------------------------------
    assert_eq!(rep1.metrics.counters["bytes_in"], 4096 * 4);
    assert_eq!(rep1.metrics.histograms["cr_ppt"].count, 1);
    assert_eq!(rep1.metrics, rep2.metrics);

    // --- Flame summary nests the kernel under its stage -----------
    let flame = rep1.flame_summary();
    let c = flame.find("compress").expect("compress in flame");
    let k = flame.find("copy-kernel").expect("kernel in flame");
    assert!(c < k, "kernel should render under the stage:\n{flame}");
}

#[test]
fn stream_launches_get_one_labeled_lane_per_stream() {
    let _lock = TEST_LOCK.lock().unwrap();
    profile::install();
    profile::enable(true);
    let input: Vec<f32> = (0..4096).map(|i| i as f32).collect();
    cuszi_gpu_sim::with_streams(2, |streams| {
        for s in streams {
            let input = &input;
            s.submit(move || {
                let src = GlobalRead::new(input);
                launch_named(&A100, Grid::linear(16, 64), "lane-kernel", |ctx| {
                    let b = ctx.block_linear() as usize;
                    let chunk = 4096 / 16;
                    let mut buf = ctx.scratch(chunk, 0.0f32);
                    ctx.read_span(&src, b * chunk, &mut buf);
                });
            });
        }
        for s in streams {
            s.synchronize().expect("no fault armed");
        }
    });
    profile::enable(false);
    let rep = profile::profiler().unwrap().report();

    // Each stream worker is its own tracer thread, labeled by the
    // stream it serves.
    let labels: Vec<&str> = rep.thread_labels.iter().map(|(_, l)| l.as_str()).collect();
    assert!(labels.contains(&"stream-0"), "labels: {labels:?}");
    assert!(labels.contains(&"stream-1"), "labels: {labels:?}");
    let tid_of = |want: &str| {
        rep.thread_labels.iter().find(|(_, l)| l == want).map(|(t, _)| *t).unwrap()
    };
    assert_ne!(tid_of("stream-0"), tid_of("stream-1"), "one lane per stream");

    // The kernel X events land on the labeled lanes, and the trace
    // carries Perfetto `thread_name` metadata for them.
    let lane_tids: Vec<u32> = rep.thread_labels.iter().map(|(t, _)| *t).collect();
    let xs: Vec<_> = rep
        .events
        .iter()
        .filter(|e| e.name.as_str() == "lane-kernel")
        .collect();
    assert_eq!(xs.len(), 2);
    assert!(xs.iter().all(|e| lane_tids.contains(&e.tid)));
    let json = rep.chrome_trace();
    let v = minjson::parse(&json).expect("valid trace json");
    let events = v.get("traceEvents").unwrap().as_array().unwrap();
    let metas: Vec<_> = events
        .iter()
        .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
        .collect();
    assert!(metas.len() >= 2, "thread_name metadata present: {json}");
    for m in &metas {
        assert_eq!(m.get("name").unwrap().as_str(), Some("thread_name"));
        assert!(m.get("args").unwrap().get("name").is_some());
    }
    // Flame summary headers show the lane names.
    let flame = rep.flame_summary();
    assert!(flame.contains("(stream-0)"), "flame:\n{flame}");
}

#[test]
fn disabled_profiling_records_nothing() {
    let _lock = TEST_LOCK.lock().unwrap();
    profile::install();
    profile::enable(false);
    {
        let _g = profile::span("ghost-stage", Category::Stage);
        profile::count("ghost-counter", 1);
    }
    let rep = profile::profiler().unwrap().report();
    assert!(!rep.events.iter().any(|e| e.name.as_str() == "ghost-stage"));
    assert!(!rep.metrics.counters.contains_key("ghost-counter"));
}
