//! Umbrella crate for the cuSZ-i reproduction workspace.
//!
//! Re-exports the public surface of every member crate so examples and
//! integration tests can depend on a single package. Downstream users
//! would typically depend on [`cuszi_core`] directly.

pub use cuszi_baselines as baselines;
pub use cuszi_bitcomp as bitcomp;
pub use cuszi_core as core;
pub use cuszi_datagen as datagen;
pub use cuszi_gpu_sim as gpu_sim;
pub use cuszi_huffman as huffman;
pub use cuszi_metrics as metrics;
pub use cuszi_predict as predict;
pub use cuszi_profile as profile;
pub use cuszi_quant as quant;
pub use cuszi_tensor as tensor;
pub use cuszi_transfer as transfer;
