//! Multi-tenant engine behaviour under concurrency: archives from
//! concurrent jobs must be byte-identical to serial one-shot
//! compression on every dataset analogue, the session cache must turn
//! repeat content into cheaper warm hits without changing bytes, the
//! two-lane token-bucket scheduler must keep a heavy tenant from
//! starving a light one, and a fault injected into one tenant's job
//! must fail that job alone — typed — while everyone else's work
//! completes.
//!
//! Fault state is process-global, so the fault test serializes against
//! the concurrency tests on one lock (mirroring `fault_matrix.rs`):
//! an armed fault would otherwise trip in a neighbouring test's
//! allocations.

use std::sync::Mutex;

use cuszi_repro::core::{
    Config, CuszError, CuszI, Engine, EngineConfig, EngineError, Priority, StageFaultKind,
};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::fault::{self, FaultSpec};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

struct Armed;

impl Armed {
    fn new(spec: FaultSpec) -> Armed {
        fault::arm(spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn cfg() -> Config {
    Config::new(ErrorBound::Rel(1e-3))
}

/// One small crop per dataset analogue: enough structure to exercise
/// the full pipeline, small enough that eight of them run concurrently
/// inside a test budget.
fn crops(seed: u64) -> Vec<(String, NdArray<f32>)> {
    DatasetKind::ALL
        .iter()
        .map(|kind| {
            let ds = generate(*kind, Scale::Small, seed);
            let f = &ds.fields[0];
            let d = f.data.shape().dims3();
            let ext = [d[0].min(16), d[1].min(16), d[2].min(16)];
            let data = NdArray::from_fn(Shape::d3(ext[0], ext[1], ext[2]), |z, y, x| {
                f.data.get3(z, y, x)
            });
            (format!("t-{}", kind.name().to_lowercase()), data)
        })
        .collect()
}

#[test]
fn eight_concurrent_jobs_match_serial_one_shot_on_all_datasets() {
    let _g = guard();
    let crops = crops(11);
    // Six datasets plus two repeats of the first two: eight jobs in
    // flight against four workers, with duplicate content in the mix.
    let mut jobs: Vec<&(String, NdArray<f32>)> = crops.iter().collect();
    jobs.push(&crops[0]);
    jobs.push(&crops[1]);

    let engine = Engine::new(EngineConfig::default().with_workers(4));
    let tickets: Vec<_> = jobs
        .iter()
        .map(|(tenant, data)| {
            engine.submit_compress(tenant, Priority::Interactive, data.clone(), cfg()).unwrap()
        })
        .collect();
    let results: Vec<_> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();

    let one_shot = CuszI::new(cfg());
    for ((tenant, data), r) in jobs.iter().zip(results) {
        let serial = one_shot.compress(data).unwrap();
        let c = r.output.into_compressed().unwrap();
        assert_eq!(
            c.bytes, serial.bytes,
            "{tenant}: concurrent engine archive differs from serial one-shot"
        );
        // Round-trip through the engine too.
        let d = engine.decompress(tenant, c.bytes.clone(), cfg()).unwrap();
        let d = d.output.into_decompressed().unwrap();
        assert_eq!(d.data.shape(), data.shape(), "{tenant}: decompressed shape");
    }

    // Steady state: resubmitting now-cached content is a warm hit that
    // still produces identical bytes with fewer kernel launches.
    for (tenant, data) in crops.iter().take(2) {
        let warm = engine.compress(tenant, data.clone(), cfg()).unwrap();
        assert!(warm.cache_hit, "{tenant}: repeat content should hit the session cache");
        let warm_c = warm.output.into_compressed().unwrap();
        let serial = one_shot.compress(data).unwrap();
        assert_eq!(warm_c.bytes, serial.bytes, "{tenant}: warm archive differs");
        assert!(
            warm_c.kernels.len() < serial.kernels.len(),
            "{tenant}: warm hit should skip tune/histogram/codebook kernels ({} vs {})",
            warm_c.kernels.len(),
            serial.kernels.len()
        );
    }
    let s = engine.stats();
    assert!(s.cache_hits >= 2, "expected warm hits, stats: {s:?}");
}

#[test]
fn heavy_tenant_cannot_starve_light_tenant() {
    let _g = guard();
    let crops = crops(12);
    let (heavy, heavy_data) = &crops[0];
    let (light, light_data) = &crops[1];

    // One worker serializes execution so completion order is the
    // scheduler's pick order. The heavy tenant floods the batch lane;
    // the light tenant then asks for one interactive job.
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    let heavy_tickets: Vec<_> = (0..12)
        .map(|_| {
            engine.submit_compress(heavy, Priority::Batch, heavy_data.clone(), cfg()).unwrap()
        })
        .collect();
    let light_ticket =
        engine.submit_compress(light, Priority::Interactive, light_data.clone(), cfg()).unwrap();

    let light_done = light_ticket.wait().unwrap().done_ns;
    let heavy_done: Vec<u64> =
        heavy_tickets.into_iter().map(|t| t.wait().unwrap().done_ns).collect();
    let jumped_ahead = heavy_done.iter().filter(|&&d| d < light_done).count();
    // At most a couple of heavy jobs can precede the light one: any
    // already in flight when it arrived, plus scheduling slack. A
    // starved light tenant would put it at the back of all twelve.
    assert!(
        jumped_ahead <= 4,
        "light interactive job finished after {jumped_ahead}/12 heavy batch jobs"
    );
}

#[test]
fn poisoned_job_fails_typed_while_other_tenants_complete() {
    let _g = guard();
    let crops = crops(13);

    // One worker: jobs run serially in submission order (same lane,
    // distinct tenants at full token balance -> round-robin), so the
    // one-shot alloc fault lands in the first job and nowhere else.
    let engine = Engine::new(EngineConfig::default().with_workers(1));
    let _armed = Armed::new(FaultSpec::AllocNth(1));
    let bad =
        engine.submit_compress("t-bad", Priority::Interactive, crops[0].1.clone(), cfg()).unwrap();
    let good: Vec<_> = crops[1..4]
        .iter()
        .map(|(tenant, data)| {
            engine.submit_compress(tenant, Priority::Interactive, data.clone(), cfg()).unwrap()
        })
        .collect();

    match bad.wait() {
        Err(EngineError::Job(
            err @ CuszError::StageError { kind: StageFaultKind::AllocFailed, .. },
        )) => {
            // Typed, stage-attributed, and renderable.
            assert!(!err.stage().is_empty());
            assert!(!format!("{err}").is_empty());
        }
        other => panic!("poisoned job should fail with a typed alloc error, got {other:?}"),
    }
    let serial = CuszI::new(cfg());
    for ((tenant, data), t) in crops[1..4].iter().zip(good) {
        let r = t.wait().unwrap_or_else(|e| panic!("{tenant}: innocent job failed: {e}"));
        let c = r.output.into_compressed().unwrap();
        let reference = serial.compress(data).unwrap();
        assert_eq!(c.bytes, reference.bytes, "{tenant}: archive after a neighbour's fault");
    }
    let s = engine.stats();
    assert_eq!(s.completed, 4, "all jobs (including the failed one) must retire: {s:?}");
}
