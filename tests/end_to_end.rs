//! End-to-end integration: every codec against every dataset analogue,
//! verifying the error-bound contract and the paper's quality ordering.

use cuszi_repro::baselines::{with_bitcomp, Cusz, Cuszp, Cuszx, Cuzfp, FzGpu, Qoz};
use cuszi_repro::core::{Codec, Config, CuszI};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::A100;
use cuszi_repro::metrics::{check_error_bound_f32, compression_ratio, distortion};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::NdArray;

fn shrink(data: &NdArray<f32>) -> NdArray<f32> {
    // Cut a 48^3-ish window so the full matrix of codecs x datasets
    // stays fast; generators are deterministic so this is stable.
    let d = data.shape().dims3();
    let ext = [d[0].min(48), d[1].min(48), d[2].min(48)];
    NdArray::from_fn(
        cuszi_repro::tensor::Shape::d3(ext[0], ext[1], ext[2]),
        |z, y, x| data.get3(z, y, x),
    )
}

fn eb_codecs(eb: ErrorBound) -> Vec<Box<dyn Codec>> {
    vec![
        Box::new(CuszI::new(Config::new(eb))),
        Box::new(CuszI::new(Config::new(eb).without_bitcomp())),
        Box::new(Cusz::new(eb, A100)),
        Box::new(Cuszp::new(eb, A100)),
        Box::new(Cuszx::new(eb, A100)),
        Box::new(FzGpu::new(eb, A100)),
        Box::new(with_bitcomp(Cusz::new(eb, A100), A100)),
        Box::new(Qoz::new(eb)),
    ]
}

#[test]
fn every_codec_roundtrips_every_dataset_within_bound() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let field = shrink(&ds.fields[0].data);
        let eb_rel = 1e-3;
        for codec in eb_codecs(ErrorBound::Rel(eb_rel)) {
            let (bytes, _) = codec
                .compress_bytes(&field)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.name(), kind.name()));
            let (recon, _) = codec
                .decompress_bytes(&bytes)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", codec.name(), kind.name()));
            assert_eq!(recon.shape(), field.shape());
            let range = {
                let s = field.as_slice();
                let (mn, mx) = s.iter().fold((f32::INFINITY, f32::NEG_INFINITY), |(a, b), &v| {
                    (a.min(v), b.max(v))
                });
                (mx - mn) as f64
            };
            assert_eq!(
                check_error_bound_f32(field.as_slice(), recon.as_slice(), eb_rel * range),
                None,
                "{} violates the bound on {}",
                codec.name(),
                kind.name()
            );
        }
    }
}

#[test]
fn archives_are_byte_identical_across_thread_counts() {
    // The lock-free slot/compaction substrate must keep the full
    // pipeline deterministic by construction: compressing with one
    // worker and with eight must produce the same bytes (and the same
    // bytes as whatever the ambient pool picks).
    use cuszi_repro::gpu_sim::pool;
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = shrink(&ds.fields[0].data);
    for codec in eb_codecs(ErrorBound::Rel(1e-3)) {
        let (ambient, _) = codec.compress_bytes(&field).unwrap();
        let (one, _) = pool::with_threads(1, || codec.compress_bytes(&field)).unwrap();
        let (eight, _) = pool::with_threads(8, || codec.compress_bytes(&field)).unwrap();
        assert_eq!(one, eight, "{}: 1-thread vs 8-thread archive", codec.name());
        assert_eq!(one, ambient, "{}: explicit vs ambient pool archive", codec.name());
        // Decompression is deterministic too.
        let (r1, _) = pool::with_threads(1, || codec.decompress_bytes(&one)).unwrap();
        let (r8, _) = pool::with_threads(8, || codec.decompress_bytes(&one)).unwrap();
        assert_eq!(r1.as_slice(), r8.as_slice(), "{}: decompress", codec.name());
    }
}

#[test]
fn cuszi_with_bitcomp_has_best_ratio_on_smooth_datasets() {
    // The Table III headline at moderate bounds on compressible data.
    for kind in [DatasetKind::Miranda, DatasetKind::S3d] {
        let ds = generate(kind, Scale::Small, 42);
        let field = &ds.fields[0].data;
        let eb = ErrorBound::Rel(1e-2);
        let ours = CuszI::new(Config::new(eb));
        let (our_bytes, _) = ours.compress_bytes(field).unwrap();
        let our_cr = compression_ratio(field.len() * 4, our_bytes.len());
        let baselines: Vec<Box<dyn Codec>> = vec![
            Box::new(with_bitcomp(Cusz::new(eb, A100), A100)),
            Box::new(with_bitcomp(Cuszp::new(eb, A100), A100)),
            Box::new(with_bitcomp(Cuszx::new(eb, A100), A100)),
            Box::new(with_bitcomp(FzGpu::new(eb, A100), A100)),
        ];
        for b in baselines {
            let (bytes, _) = b.compress_bytes(field).unwrap();
            let cr = compression_ratio(field.len() * 4, bytes.len());
            assert!(
                our_cr > cr,
                "{}: cuSZ-i CR {our_cr:.1} must beat {} CR {cr:.1}",
                kind.name(),
                b.name()
            );
        }
    }
}

#[test]
fn bitcomp_amplifies_cuszi_more_than_lorenzo_codecs() {
    // § VII-C.1: "G-Interp ... is more attuned to the additional pass of
    // lossless encoding than any other compressor."
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = &ds.fields[0].data;
    let eb = ErrorBound::Rel(1e-2);

    let gain = |without: usize, with: usize| without as f64 / with as f64;

    let (a, _) = CuszI::new(Config::new(eb).without_bitcomp()).compress_bytes(field).unwrap();
    let (b, _) = CuszI::new(Config::new(eb)).compress_bytes(field).unwrap();
    let ours = gain(a.len(), b.len());

    let (c, _) = Cusz::new(eb, A100).compress_bytes(field).unwrap();
    let (d, _) = with_bitcomp(Cusz::new(eb, A100), A100).compress_bytes(field).unwrap();
    let theirs = gain(c.len(), d.len());

    assert!(ours > theirs, "bitcomp gain: cuSZ-i {ours:.2}x vs cuSZ {theirs:.2}x");
}

#[test]
fn qoz_cpu_reference_stays_ahead_of_cuszi_in_ratio() {
    // § VII-C.2: "CPU-based QoZ still features a better compression
    // ratio than cuSZ-i due to larger interpolation blocks."
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = &ds.fields[0].data;
    let eb = ErrorBound::Rel(1e-3);
    let (qoz_bytes, _) = Qoz::new(eb).compress_bytes(field).unwrap();
    let (our_bytes, _) = CuszI::new(Config::new(eb)).compress_bytes(field).unwrap();
    // QoZ should be at least comparable (paper: slightly better).
    assert!(
        (qoz_bytes.len() as f64) < our_bytes.len() as f64 * 1.15,
        "QoZ {} vs cuSZ-i {}",
        qoz_bytes.len(),
        our_bytes.len()
    );
}

#[test]
fn cuzfp_rate_distortion_is_monotone_on_real_data() {
    let ds = generate(DatasetKind::Jhtdb, Scale::Small, 42);
    let field = shrink(&ds.fields[0].data);
    let mut last_psnr = 0.0;
    for rate in [2.0, 4.0, 8.0, 16.0] {
        let z = Cuzfp::new(rate, A100);
        let (bytes, _) = z.compress_bytes(&field).unwrap();
        let (recon, _) = z.decompress_bytes(&bytes).unwrap();
        let p = distortion(field.as_slice(), recon.as_slice()).unwrap().psnr;
        assert!(p > last_psnr, "rate {rate}: PSNR {p:.1} not above {last_psnr:.1}");
        last_psnr = p;
        // Fixed rate: the effective bitrate tracks the request within
        // the format's quantisation (whole bit-planes, byte-aligned
        // blocks, 16-bit headers).
        let cr = compression_ratio(field.len() * 4, bytes.len());
        let effective = 32.0 / cr;
        assert!(
            effective <= rate + 0.5 && effective >= rate - 1.3,
            "rate {rate}: effective {effective:.2} bits/value"
        );
    }
}

#[test]
fn archives_are_deterministic() {
    // Same input + config -> byte-identical archives (required for the
    // figure regenerators to be reproducible).
    let ds = generate(DatasetKind::S3d, Scale::Small, 1);
    let field = shrink(&ds.fields[0].data);
    for codec in eb_codecs(ErrorBound::Rel(1e-3)) {
        let (a, _) = codec.compress_bytes(&field).unwrap();
        let (b, _) = codec.compress_bytes(&field).unwrap();
        assert_eq!(a, b, "{} archive not deterministic", codec.name());
    }
}

#[test]
fn cross_codec_archives_are_rejected() {
    // Feeding one codec's archive to another must error, not panic or
    // return garbage silently.
    let ds = generate(DatasetKind::Qmcpack, Scale::Small, 3);
    let field = shrink(&ds.fields[0].data);
    let eb = ErrorBound::Rel(1e-3);
    let (cusz_bytes, _) = Cusz::new(eb, A100).compress_bytes(&field).unwrap();
    assert!(CuszI::new(Config::new(eb)).decompress(&cusz_bytes).is_err());
    let (cuszi_bytes, _) = CuszI::new(Config::new(eb)).compress_bytes(&field).unwrap();
    assert!(Cuszp::new(eb, A100).decompress_bytes(&cuszi_bytes).is_err());
    assert!(FzGpu::new(eb, A100).decompress_bytes(&cuszi_bytes).is_err());
}

/// Larger soak: a 160^3 field (~16 MB) through the full pipeline.
/// Ignored by default; run with `cargo test --release -- --ignored`.
#[test]
#[ignore = "multi-second soak test"]
fn soak_large_field_full_pipeline() {
    let data = NdArray::from_fn(cuszi_repro::tensor::Shape::d3(160, 160, 160), |z, y, x| {
        let (z, y, x) = (z as f32, y as f32, x as f32);
        (0.03 * x).sin() * 2.0 + (0.04 * y).cos() + (0.02 * z).sin() + 0.05 * (0.01 * x * y).sin()
    });
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let (bytes, _) = codec.compress_bytes(&data).unwrap();
    let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
    let cr = compression_ratio(data.len() * 4, bytes.len());
    assert!(cr > 10.0, "CR {cr}");
    let d = distortion(data.as_slice(), recon.as_slice()).unwrap();
    assert!(d.psnr > 60.0, "PSNR {}", d.psnr);
}

/// Near-paper-scale soak on a real generator (256^3 turbulence, 64 MB).
/// Ignored by default: `cargo test --release -- --ignored`.
#[test]
#[ignore = "64 MB field; ~1 min"]
fn soak_quarter_paper_scale_turbulence() {
    use cuszi_repro::tensor::Shape;
    let mut rng = cuszi_repro::datagen::rng::ChaCha8Rng::seed_from_u64(99);
    let data = cuszi_repro::datagen::turbulence(Shape::d3(256, 256, 256), &mut rng);
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let (bytes, _) = codec.compress_bytes(&data).unwrap();
    let cr = compression_ratio(data.len() * 4, bytes.len());
    let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
    let d = distortion(data.as_slice(), recon.as_slice()).unwrap();
    assert!(cr > 8.0 && d.psnr > 60.0, "CR {cr:.1}, PSNR {:.1}", d.psnr);
}
