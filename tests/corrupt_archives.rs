//! Corruption robustness for every container format in `cuszi-core`:
//! truncating a real archive at any point must yield a typed error
//! (never a panic, never a silent `Ok`), and flipping payload bits must
//! never panic. Complements `adversarial.rs`, which feeds random bytes
//! and header mutations; here the corruption starts from *valid*
//! archives, so the deep payload parsers (sections, codebook, Huffman
//! stream, slab table) all get exercised past the header checks.

use cuszi_repro::core::archive::{Header, HEADER_LEN};
use cuszi_repro::core::{
    compress_fields, compress_pw_rel, compress_slabs, decompress_fields, decompress_pw_rel,
    decompress_slabs, Config, CuszError, CuszI, NamedField,
};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};
use proptest::prelude::*;

fn field() -> NdArray<f32> {
    NdArray::from_fn(Shape::d3(12, 10, 10), |z, y, x| {
        ((x as f32) * 0.2).sin() + ((y as f32) * 0.15).cos() + (z as f32) * 0.05 + 0.5
    })
}

/// A format's decompressor, reduced to "did it return Ok".
type DecompressOk = Box<dyn Fn(&[u8]) -> bool>;

/// One valid archive per format: (label, bytes, decompress-callable).
fn archives() -> Vec<(&'static str, Vec<u8>, DecompressOk)> {
    let data = field();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let plain_cfg = cfg.without_bitcomp();
    let cszi = CuszI::new(cfg).compress(&data).unwrap().bytes;
    let cszi_plain = CuszI::new(plain_cfg).compress(&data).unwrap().bytes;
    let named = [NamedField { name: "f0", data: &data }, NamedField { name: "f1", data: &data }];
    let cszm = compress_fields(&named, cfg).unwrap().bytes;
    let shape = data.shape();
    let cszs = compress_slabs(shape, 4, cfg, |z0, nz| {
        let [_, ny, nx] = shape.dims3();
        NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| data.get3(z0 + z, y, x))
    })
    .unwrap();
    let cszr = compress_pw_rel(&data, 1e-3, 1e-6, cfg).unwrap().bytes;
    vec![
        ("CSZI", cszi, Box::new(move |b: &[u8]| CuszI::new(cfg).decompress(b).is_ok()) as _),
        (
            "CSZI-plain",
            cszi_plain,
            Box::new(move |b: &[u8]| CuszI::new(plain_cfg).decompress(b).is_ok()) as _,
        ),
        ("CSZM", cszm, Box::new(move |b: &[u8]| decompress_fields(b, cfg).is_ok()) as _),
        ("CSZS", cszs, Box::new(move |b: &[u8]| decompress_slabs(b, cfg, |_, _| {}).is_ok()) as _),
        ("CSZR", cszr, Box::new(move |b: &[u8]| decompress_pw_rel(b, cfg).is_ok()) as _),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any strict prefix of a valid archive must decompress to an
    /// error: every format's framing is length-checked end to end.
    #[test]
    fn prop_truncated_archives_error(cut in any::<u32>()) {
        for (label, bytes, decompress_ok) in archives() {
            let at = cut as usize % bytes.len();
            prop_assert!(
                !decompress_ok(&bytes[..at]),
                "{label}: truncation at {at}/{} decompressed Ok", bytes.len()
            );
        }
    }

    /// Bit flips anywhere in a valid archive must never panic; an
    /// error or (for undetected payload damage) wrong data are both
    /// acceptable outcomes.
    #[test]
    fn prop_bit_flips_never_panic(
        flips in proptest::collection::vec((any::<u32>(), 0u8..8), 1..16),
    ) {
        for (_label, mut bytes, decompress_ok) in archives() {
            for &(pos, bit) in &flips {
                let i = pos as usize % bytes.len();
                bytes[i] ^= 1 << bit;
            }
            let _ = decompress_ok(&bytes);
        }
    }

    /// Cutting bytes out of the Huffman section (with the header's
    /// section table updated to match, so framing still adds up) must
    /// be a typed error: the stream parser and the decoded-length
    /// check both sit past the framing layer.
    #[test]
    fn prop_truncated_huffman_section_errors(cut in 1u64..4096) {
        let data = field();
        let cfg = Config::new(ErrorBound::Rel(1e-3)).without_bitcomp();
        let c = CuszI::new(cfg).compress(&data).unwrap().bytes;
        let mut h = Header::from_bytes(&c).unwrap();
        let cut = cut.min(h.sections[2] - 1);
        let start = HEADER_LEN + (h.sections[0] + h.sections[1]) as usize;
        let end = start + h.sections[2] as usize;
        h.sections[2] -= cut;
        let mut bad = h.to_bytes();
        bad.extend_from_slice(&c[HEADER_LEN..end - cut as usize]);
        bad.extend_from_slice(&c[end..]);
        prop_assert!(
            CuszI::new(cfg).decompress(&bad).is_err(),
            "cut {cut} bytes from the huffman section, decompressed Ok"
        );
    }

    /// A crafted entry length near `u64::MAX` must surface as a typed
    /// `CorruptArchive`: the container walkers do their offset
    /// arithmetic with `checked_add` in the u64 domain, so a huge
    /// length can never wrap the cursor into a bogus in-bounds slice
    /// (or panic slicing past the end).
    #[test]
    fn prop_overflow_entry_lengths_error(delta in 0u64..4096) {
        let data = field();
        let cfg = Config::new(ErrorBound::Rel(1e-3));
        let shape = data.shape();
        let cszs = compress_slabs(shape, 4, cfg, |z0, nz| {
            let [_, ny, nx] = shape.dims3();
            NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| data.get3(z0 + z, y, x))
        })
        .unwrap();
        let named = [NamedField { name: "f0", data: &data }];
        let cszm = compress_fields(&named, cfg).unwrap().bytes;
        let huge = (u64::MAX - delta).to_le_bytes();

        // CSZS: the first slab's u64 length sits right after the
        // 37-byte header.
        let mut bad = cszs.clone();
        bad[37..45].copy_from_slice(&huge);
        prop_assert!(
            matches!(
                decompress_slabs(&bad, cfg, |_, _| {}),
                Err(CuszError::CorruptArchive(_))
            ),
            "CSZS length {} not rejected as CorruptArchive", u64::MAX - delta
        );

        // CSZM: magic(4) + count(4) + namelen(2) + "f0"(2) puts the
        // first entry's u64 archive length at byte 12.
        let mut bad = cszm.clone();
        bad[12..20].copy_from_slice(&huge);
        prop_assert!(
            matches!(
                decompress_fields(&bad, cfg),
                Err(CuszError::CorruptArchive(_))
            ),
            "CSZM length {} not rejected as CorruptArchive", u64::MAX - delta
        );
    }

    /// Shifting bytes between the anchor and Huffman sections keeps
    /// the payload total consistent but makes the anchor count
    /// disagree with the header's shape — the geometry cross-check
    /// must reject it (a typed error, not a bad reconstruction).
    #[test]
    fn prop_inconsistent_anchor_geometry_errors(shift in 1u64..64) {
        let data = field();
        let cfg = Config::new(ErrorBound::Rel(1e-3)).without_bitcomp();
        let c = CuszI::new(cfg).compress(&data).unwrap().bytes;
        let mut h = Header::from_bytes(&c).unwrap();
        let shift = shift.min(h.sections[0] / 4 - 1) * 4;
        h.sections[0] -= shift;
        h.sections[2] += shift;
        let mut bad = h.to_bytes();
        bad.extend_from_slice(&c[HEADER_LEN..]);
        prop_assert!(
            CuszI::new(cfg).decompress(&bad).is_err(),
            "anchor section shrunk by {shift} bytes, decompressed Ok"
        );
    }

    /// Garbage appended to the Huffman bitstream (with the section
    /// table updated, so framing stays consistent) must trip the
    /// decoder's trailing-pad validation as a typed, chunk-attributed
    /// `DecodeCorrupt` — whole extra bytes past the final symbol can
    /// never be silently ignored.
    #[test]
    fn prop_trailing_huffman_garbage_errors(junk in 1u16..256) {
        let junk = junk as u8;
        let data = field();
        let cfg = Config::new(ErrorBound::Rel(1e-3)).without_bitcomp();
        let c = CuszI::new(cfg).compress(&data).unwrap().bytes;
        let mut h = Header::from_bytes(&c).unwrap();
        let huff_end = HEADER_LEN + (h.sections[0] + h.sections[1] + h.sections[2]) as usize;
        h.sections[2] += 1;
        let mut bad = h.to_bytes();
        bad.extend_from_slice(&c[HEADER_LEN..huff_end]);
        bad.push(junk);
        bad.extend_from_slice(&c[huff_end..]);
        match CuszI::new(cfg).decompress(&bad) {
            Err(e @ CuszError::DecodeCorrupt { chunk, .. }) => {
                prop_assert!(chunk.is_some(), "pad error must attribute its chunk: {e}");
                prop_assert!(e.to_string().starts_with("corrupt archive"), "{e}");
            }
            Err(other) => prop_assert!(false, "expected DecodeCorrupt, got {other}"),
            Ok(_) => prop_assert!(false, "trailing huffman garbage decompressed Ok"),
        }
    }
}
