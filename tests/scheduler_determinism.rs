//! The multi-stream scheduler's core invariant: archives are
//! byte-identical for any stream count, and identical to the monolith
//! (one `CuszI::compress` per field) path — on every dataset analogue.
//!
//! gpu-sim kernels are deterministic for any worker count and every
//! stage of one job stays on one stream, so overlap must change only
//! *when* work runs, never *what* it produces. The sharded paths
//! extend the invariant to device count: archives are byte-identical
//! at devices ∈ {1, 2, 4} × streams ∈ {1, 4} on every dataset.

use cuszi_repro::core::{
    compress_fields_sharded, compress_fields_streams, compress_slabs_sharded,
    compress_slabs_streams, decompress_fields_sharded, decompress_fields_streams,
    decompress_slabs_sharded, decompress_slabs_streams, Config, CuszI, NamedField, ShardPlan,
};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};

/// Crop a field to <= 32^3 so the full dataset sweep stays debug-fast;
/// generators are deterministic, so the crop is stable.
fn crop(data: &NdArray<f32>) -> NdArray<f32> {
    let d = data.shape().dims3();
    let ext = [d[0].min(32), d[1].min(32), d[2].min(32)];
    NdArray::from_fn(Shape::d3(ext[0], ext[1], ext[2]), |z, y, x| data.get3(z, y, x))
}

/// Reassemble the CSZM container layout from per-field archives — the
/// byte-level spec the scheduler must reproduce.
fn monolith_container(fields: &[(String, NdArray<f32>)], cfg: Config) -> Vec<u8> {
    let codec = CuszI::new(cfg);
    let mut bytes = Vec::new();
    bytes.extend_from_slice(b"CSZM");
    bytes.extend_from_slice(&(fields.len() as u32).to_le_bytes());
    for (name, data) in fields {
        let c = codec.compress(data).expect("monolith compress");
        bytes.extend_from_slice(&(name.len() as u16).to_le_bytes());
        bytes.extend_from_slice(name.as_bytes());
        bytes.extend_from_slice(&(c.bytes.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&c.bytes);
    }
    bytes
}

#[test]
fn batch_archives_identical_across_stream_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let fields: Vec<(String, NdArray<f32>)> =
            ds.fields.iter().map(|f| (f.name.to_string(), crop(&f.data))).collect();
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();

        let (one, r1) = compress_fields_streams(&named, cfg, 1).expect("streams=1");
        let (four, r4) = compress_fields_streams(&named, cfg, 4).expect("streams=4");
        assert_eq!(
            one.bytes,
            four.bytes,
            "{}: container differs between --streams 1 and --streams 4",
            kind.name()
        );
        assert_eq!(r1.streams, 1);
        assert!(r4.streams <= 4);

        let mono = monolith_container(&fields, cfg);
        assert_eq!(
            one.bytes,
            mono,
            "{}: scheduler container differs from the monolith path",
            kind.name()
        );
    }
}

#[test]
fn slab_streams_identical_across_stream_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Abs(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 7);
        let field = crop(&ds.fields[0].data);
        let shape = field.shape();
        let [_, ny, nx] = shape.dims3();
        let slab = |z0: usize, nz: usize| {
            NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| field.get3(z0 + z, y, x))
        };
        let (one, _) = compress_slabs_streams(shape, 8, cfg, 1, slab).expect("streams=1");
        let (four, _) = compress_slabs_streams(shape, 8, cfg, 4, slab).expect("streams=4");
        assert_eq!(one, four, "{}: slab stream differs across stream counts", kind.name());
    }
}

/// Bit patterns of a reconstruction, for byte-identity comparison
/// (f32 `==` would conflate 0.0/-0.0 and choke on NaN).
fn bits(d: &NdArray<f32>) -> Vec<u32> {
    d.as_slice().iter().map(|v| v.to_bits()).collect()
}

#[test]
fn batch_decompress_identical_across_stream_and_device_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let fields: Vec<(String, NdArray<f32>)> =
            ds.fields.iter().map(|f| (f.name.to_string(), crop(&f.data))).collect();
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();
        let (c, _) = compress_fields_streams(&named, cfg, 2).expect("compress");

        // The monolith decode path is the byte-level reference.
        let (reference, _) = decompress_fields_streams(&c.bytes, cfg, 1).expect("streams=1");
        for streams in [1usize, 4] {
            let (back, report) =
                decompress_fields_streams(&c.bytes, cfg, streams).expect("decompress");
            assert_eq!(back.len(), reference.len(), "{}", kind.name());
            for ((n, d), (rn, rd)) in back.iter().zip(&reference) {
                assert_eq!(n, rn, "{}", kind.name());
                assert_eq!(
                    bits(d),
                    bits(rd),
                    "{}: field {n} differs at streams={streams}",
                    kind.name()
                );
            }
            assert!(report.streams <= streams.max(1));
        }
        for devices in [1usize, 2, 4] {
            for streams in [1usize, 4] {
                let plan = ShardPlan::new(devices).streams(streams);
                let (back, _) = decompress_fields_sharded(&c.bytes, cfg, plan)
                    .unwrap_or_else(|e| {
                        panic!("{}: devices={devices} streams={streams}: {e}", kind.name())
                    });
                for ((n, d), (rn, rd)) in back.iter().zip(&reference) {
                    assert_eq!(n, rn, "{}", kind.name());
                    assert_eq!(
                        bits(d),
                        bits(rd),
                        "{}: field {n} differs at devices={devices} streams={streams}",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn slab_decompress_identical_across_stream_and_device_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Abs(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 7);
        let field = crop(&ds.fields[0].data);
        let shape = field.shape();
        let [_, ny, nx] = shape.dims3();
        let slab = |z0: usize, nz: usize| {
            NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| field.get3(z0 + z, y, x))
        };
        let (bytes, _) = compress_slabs_streams(shape, 8, cfg, 2, slab).expect("compress");

        let mut reference = Vec::new();
        decompress_slabs_streams(&bytes, cfg, 1, |z0, s| reference.push((z0, bits(&s))))
            .expect("streams=1");
        for streams in [1usize, 4] {
            let mut got = Vec::new();
            let (got_shape, _) =
                decompress_slabs_streams(&bytes, cfg, streams, |z0, s| got.push((z0, bits(&s))))
                    .expect("decompress");
            assert_eq!(got_shape, shape, "{}", kind.name());
            assert_eq!(
                got,
                reference,
                "{}: reconstruction differs at streams={streams}",
                kind.name()
            );
        }
        for devices in [1usize, 2, 4] {
            for streams in [1usize, 4] {
                let plan = ShardPlan::new(devices).streams(streams);
                let mut got = Vec::new();
                let (got_shape, _) =
                    decompress_slabs_sharded(&bytes, cfg, plan, |z0, s| got.push((z0, bits(&s))))
                        .unwrap_or_else(|e| {
                            panic!("{}: devices={devices} streams={streams}: {e}", kind.name())
                        });
                assert_eq!(got_shape, shape, "{}", kind.name());
                assert_eq!(
                    got,
                    reference,
                    "{}: reconstruction differs at devices={devices} streams={streams}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn sharded_batch_identical_across_device_and_stream_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let fields: Vec<(String, NdArray<f32>)> =
            ds.fields.iter().map(|f| (f.name.to_string(), crop(&f.data))).collect();
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();

        let (reference, _) = compress_fields_streams(&named, cfg, 1).expect("streams=1");
        for devices in [1usize, 2, 4] {
            for streams in [1usize, 4] {
                let plan = ShardPlan::new(devices).streams(streams);
                let (c, report) = compress_fields_sharded(&named, cfg, plan)
                    .unwrap_or_else(|e| {
                        panic!("{}: devices={devices} streams={streams}: {e}", kind.name())
                    });
                assert_eq!(
                    c.bytes,
                    reference.bytes,
                    "{}: container differs at devices={devices} streams={streams}",
                    kind.name()
                );
                assert_eq!(report.devices, devices);
                assert_eq!(
                    report.per_device.iter().map(|d| d.jobs).sum::<usize>(),
                    named.len(),
                    "{}: shard layout lost fields",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn sharded_slabs_identical_across_device_and_stream_counts_on_all_datasets() {
    let cfg = Config::new(ErrorBound::Abs(1e-3));
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 7);
        let field = crop(&ds.fields[0].data);
        let shape = field.shape();
        let [_, ny, nx] = shape.dims3();
        let slab = |z0: usize, nz: usize| {
            NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| field.get3(z0 + z, y, x))
        };
        let (reference, _) = compress_slabs_streams(shape, 8, cfg, 1, slab).expect("streams=1");
        for devices in [1usize, 2, 4] {
            for streams in [1usize, 4] {
                let plan = ShardPlan::new(devices).streams(streams);
                let (bytes, _) = compress_slabs_sharded(shape, 8, cfg, plan, slab)
                    .unwrap_or_else(|e| {
                        panic!("{}: devices={devices} streams={streams}: {e}", kind.name())
                    });
                assert_eq!(
                    bytes,
                    reference,
                    "{}: slab stream differs at devices={devices} streams={streams}",
                    kind.name()
                );
            }
        }
    }
}
