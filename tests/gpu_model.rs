//! Execution-model integration: invariants of the measured kernel
//! traffic that the Fig. 9/10 timing results rest on. If these drift,
//! the throughput reproduction is no longer trustworthy.

use cuszi_repro::baselines::{Cusz, Cuszp};
use cuszi_repro::core::{Codec, Config, CuszI};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::{KernelStats, TimingModel, A100};
use cuszi_repro::quant::ErrorBound;

fn total(kernels: &[KernelStats]) -> KernelStats {
    kernels.iter().fold(KernelStats::default(), |acc, k| acc.merged(*k))
}

#[test]
fn compression_reads_the_input_at_least_once_and_not_wildly_more() {
    let ds = generate(DatasetKind::S3d, Scale::Small, 42);
    let field = &ds.fields[0];
    let input_bytes = (field.data.len() * 4) as u64;
    let eb = ErrorBound::Rel(1e-3);

    let codecs: Vec<Box<dyn Codec>> = vec![
        Box::new(CuszI::new(Config::new(eb))),
        Box::new(Cusz::new(eb, A100)),
        Box::new(Cuszp::new(eb, A100)),
    ];
    for codec in codecs {
        let (_, art) = codec.compress_bytes(&field.data).unwrap();
        let t = total(&art.kernels);
        assert!(
            t.load_bytes >= input_bytes,
            "{}: {} loaded < {} input",
            codec.name(),
            t.load_bytes,
            input_bytes
        );
        // A compression pipeline is a handful of passes; two orders of
        // magnitude more traffic than the input means an accounting bug.
        assert!(
            t.load_bytes < 20 * input_bytes,
            "{}: {} loaded for {} input",
            codec.name(),
            t.load_bytes,
            input_bytes
        );
    }
}

#[test]
fn staged_tile_loads_keep_coalescing_high() {
    // § V-D's whole point: the tile staging keeps DRAM access coalesced.
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = &ds.fields[0];
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let (_, art) = codec.compress_bytes(&field.data).unwrap();
    // Kernel 1 is the G-Interp tile kernel.
    let interp = &art.kernels[1];
    assert!(
        interp.coalescing_efficiency() > 0.8,
        "interp kernel coalescing {:.2}",
        interp.coalescing_efficiency()
    );
    // Kernel 0 (anchor gather) is legitimately strided and must show it.
    let anchors = &art.kernels[0];
    assert!(
        anchors.coalescing_efficiency() < 0.5,
        "anchor gather should be penalised, got {:.2}",
        anchors.coalescing_efficiency()
    );
}

#[test]
fn decompression_is_not_free_and_not_absurd() {
    let ds = generate(DatasetKind::Nyx, Scale::Small, 42);
    let field = &ds.fields[0];
    let input_bytes = (field.data.len() * 4) as u64;
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let (bytes, _) = codec.compress_bytes(&field.data).unwrap();
    let (_, art) = codec.decompress_bytes(&bytes).unwrap();
    let t = total(&art.kernels);
    // Must at least write the full reconstruction.
    assert!(t.store_bytes >= input_bytes);
    let model = TimingModel::new(A100);
    let gbps = model.throughput_gbps(input_bytes, &art.kernels);
    assert!(gbps > 5.0 && gbps < 2000.0, "decomp {gbps:.1} GB/s implausible");
}

#[test]
fn timing_is_additive_over_kernels() {
    let ds = generate(DatasetKind::Qmcpack, Scale::Small, 42);
    let field = &ds.fields[0];
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-2)));
    let (_, art) = codec.compress_bytes(&field.data).unwrap();
    let model = TimingModel::new(A100);
    let sum: f64 = art.kernels.iter().map(|k| model.kernel_time(k)).sum();
    assert!((model.pipeline_time(&art.kernels) - sum).abs() < 1e-12);
}

#[test]
fn barrier_phases_are_counted_for_the_interp_kernel() {
    // 3 levels x 3 dims = 9 sweep phases + the staging barriers; the
    // dependent-phase latency model keys off this.
    let ds = generate(DatasetKind::Jhtdb, Scale::Small, 42);
    let field = &ds.fields[0];
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-2)).without_bitcomp());
    let (_, art) = codec.compress_bytes(&field.data).unwrap();
    let interp = &art.kernels[1];
    let per_block = interp.barriers as f64 / interp.blocks as f64;
    assert!(
        (9.0..=13.0).contains(&per_block),
        "interp barriers/block {per_block:.1} outside the sweep-phase range"
    );
}
