//! Predictor-level property tests: the three predictor families must
//! hold the error-bound contract over randomized shapes, fields and
//! bounds — below the archive layer, where a seam bug would hide from
//! the codec-level suites.

use cuszi_repro::gpu_sim::A100;
use cuszi_repro::predict::cpu_interp::{self, CpuInterpParams};
use cuszi_repro::predict::tuning::InterpConfig;
use cuszi_repro::predict::{ginterp, lorenzo};
use cuszi_repro::tensor::{NdArray, Shape};
use proptest::prelude::*;

fn field_strategy() -> impl Strategy<Value = (NdArray<f32>, f64)> {
    (
        1usize..20,
        1usize..20,
        1usize..50,
        0.02f32..0.4,
        0.5f32..8.0,
        1e-4f64..1e-1,
        any::<u64>(),
    )
        .prop_map(|(nz, ny, nx, freq, amp, eb, seed)| {
            let data = NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| {
                let h = seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((z * 8191 + y * 131 + x) as u64)
                    .wrapping_mul(0x2545F4914F6CDD1D);
                let noise = ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                amp * ((x as f32) * freq).sin()
                    + amp * 0.5 * ((y as f32) * freq * 0.7).cos()
                    + amp * 0.2 * (z as f32) * freq
                    + noise * amp * 0.02
            });
            (data, eb)
        })
}

fn assert_bounded(orig: &NdArray<f32>, recon: &NdArray<f32>, eb: f64, who: &str) {
    for (i, (&a, &b)) in orig.as_slice().iter().zip(recon.as_slice()).enumerate() {
        let diff = ((a as f64) - (b as f64)).abs();
        assert!(
            diff <= eb * (1.0 + 1e-6) + (a.abs() as f64) * f64::from(f32::EPSILON),
            "{who} idx {i}: |{a} - {b}| = {diff} > {eb}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn prop_ginterp_roundtrip((data, eb) in field_strategy()) {
        let cfg = InterpConfig::untuned(3);
        let out = ginterp::compress(&data, eb, 512, &cfg, &A100);
        let (recon, _) = ginterp::decompress(
            &out.codes, &out.anchors, &out.outliers, data.shape(), eb, 512, &cfg, &A100,
        );
        assert_bounded(&data, &recon, eb, "ginterp");
    }

    #[test]
    fn prop_ginterp_random_geometry(
        (data, eb) in field_strategy(),
        stride_pow in 1u32..5,
    ) {
        let geom = ginterp::Geometry::with_anchor_stride(3, 1usize << stride_pow);
        let cfg = InterpConfig::untuned(3);
        let out = ginterp::compress_with(geom, &data, eb, 512, &cfg, &A100);
        let (recon, _) = ginterp::decompress_with(
            geom, &out.codes, &out.anchors, &out.outliers, data.shape(), eb, 512, &cfg, &A100,
        );
        assert_bounded(&data, &recon, eb, "ginterp-geom");
    }

    #[test]
    fn prop_lorenzo_roundtrip((data, eb) in field_strategy()) {
        let out = lorenzo::compress(&data, eb, 512, &A100);
        let (recon, _) = lorenzo::decompress(&out.codes, &out.outliers, data.shape(), eb, 512, &A100);
        assert_bounded(&data, &recon, eb, "lorenzo");
    }

    #[test]
    fn prop_cpu_interp_roundtrip((data, eb) in field_strategy()) {
        let cfg = InterpConfig::untuned(3);
        let params = CpuInterpParams::qoz();
        let out = cpu_interp::compress(&data, eb, 512, &cfg, params);
        let recon = cpu_interp::decompress(
            &out.codes, &out.anchors, &out.outliers, data.shape(), eb, 512, &cfg, params,
        );
        assert_bounded(&data, &recon, eb, "cpu_interp");
    }

    #[test]
    fn prop_ginterp_codes_cover_alphabet((data, eb) in field_strategy()) {
        let out = ginterp::compress(&data, eb, 512, &InterpConfig::untuned(3), &A100);
        assert_eq!(out.codes.len(), data.len());
        assert!(out.codes.iter().all(|&c| (c as usize) < 1024));
        // Every outlier index points at a real element with code 0.
        for &i in out.outliers.indices() {
            assert_eq!(out.codes[i as usize], 0, "outlier without outlier code");
        }
    }
}
