//! The paper's headline claims, pinned as executable assertions.
//! Each test names the section it reproduces.

use cuszi_repro::baselines::{with_bitcomp, Cusz};
use cuszi_repro::core::{Codec, Config, CuszI};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::{TimingModel, A100, A40};
use cuszi_repro::metrics::distortion;
use cuszi_repro::predict::tuning::InterpConfig;
use cuszi_repro::predict::{ginterp, lorenzo};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::stats::ValueRange;

/// § V-E / Fig. 5: G-Interp produces far fewer nonzero quant-codes than
/// Lorenzo at the same bound on hydro data.
#[test]
fn fig5_ginterp_concentrates_codes_versus_lorenzo() {
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = &ds.fields[1].data; // pressure
    let range = ValueRange::of(field.as_slice()).unwrap().range() as f64;
    let eb = 1e-3 * range;
    let gi = ginterp::compress(field, eb, 512, &InterpConfig::untuned(3), &A100);
    let lo = lorenzo::compress(field, eb, 512, &A100);
    let nz = |codes: &[u16]| codes.iter().filter(|&&c| c != 512).count();
    assert!(
        nz(&gi.codes) * 3 < nz(&lo.codes),
        "G-Interp nonzeros {} should be well under a third of Lorenzo's {}",
        nz(&gi.codes),
        nz(&lo.codes)
    );
}

/// Fig. 6: G-Interp PSNR > Lorenzo PSNR at the same bound on RTM.
#[test]
fn fig6_ginterp_psnr_beats_lorenzo_on_rtm() {
    let snaps = cuszi_repro::datagen::rtm_series(Scale::Small, 800, 200, 3, 42);
    for snap in &snaps {
        let range = ValueRange::of(snap.data.as_slice()).unwrap().range() as f64;
        let eb = 1e-3 * range;
        let cfg = InterpConfig::untuned(3);
        let gi = ginterp::compress(&snap.data, eb, 512, &cfg, &A100);
        let (gr, _) = ginterp::decompress(
            &gi.codes, &gi.anchors, &gi.outliers, snap.data.shape(), eb, 512, &cfg, &A100,
        );
        let lo = lorenzo::compress(&snap.data, eb, 512, &A100);
        let (lr, _) =
            lorenzo::decompress(&lo.codes, &lo.outliers, snap.data.shape(), eb, 512, &A100);
        let gp = distortion(snap.data.as_slice(), gr.as_slice()).unwrap().psnr;
        let lp = distortion(snap.data.as_slice(), lr.as_slice()).unwrap().psnr;
        assert!(gp > lp, "G-Interp {gp:.2} dB !> Lorenzo {lp:.2} dB");
    }
}

/// § VII-C.1 (Table III right half): with Bitcomp enabled everywhere,
/// cuSZ-i's ratio advantage widens dramatically on compressible data.
#[test]
fn table3_bitcomp_widens_the_gap() {
    let ds = generate(DatasetKind::S3d, Scale::Small, 42);
    let field = &ds.fields[0].data;
    let eb = ErrorBound::Rel(1e-2);

    let (ours_plain, _) =
        CuszI::new(Config::new(eb).without_bitcomp()).compress_bytes(field).unwrap();
    let (ours_bc, _) = CuszI::new(Config::new(eb)).compress_bytes(field).unwrap();
    let (cusz_plain, _) = Cusz::new(eb, A100).compress_bytes(field).unwrap();
    let (cusz_bc, _) = with_bitcomp(Cusz::new(eb, A100), A100).compress_bytes(field).unwrap();

    let adv_plain = cusz_plain.len() as f64 / ours_plain.len() as f64;
    let adv_bc = cusz_bc.len() as f64 / ours_bc.len() as f64;
    assert!(
        adv_bc > adv_plain * 1.5,
        "advantage with Bitcomp {adv_bc:.2}x must far exceed without {adv_plain:.2}x"
    );
}

/// § VII-C.4 / Fig. 9: cuSZ-i compression throughput lands in the
/// paper's 50-80% band of cuSZ's, and Bitcomp adds only minor overhead.
#[test]
fn fig9_throughput_ratios_match_paper_bands() {
    let ds = generate(DatasetKind::Jhtdb, Scale::Small, 42);
    let field = &ds.fields[0];
    let model = TimingModel::new(A100);
    let eb = ErrorBound::Rel(1e-2);

    let run = |codec: &dyn Codec| {
        let (bytes, comp) = codec.compress_bytes(&field.data).unwrap();
        let (_, decomp) = codec.decompress_bytes(&bytes).unwrap();
        let input = (field.data.len() * 4) as u64;
        (
            model.throughput_gbps(input, &comp.kernels),
            model.throughput_gbps(input, &decomp.kernels),
        )
    };
    let (cusz_c, cusz_d) = run(&Cusz::new(eb, A100));
    let (ours_c, ours_d) = run(&CuszI::new(Config::new(eb).without_bitcomp()));
    let (bc_c, _) = run(&CuszI::new(Config::new(eb)));

    let comp_ratio = ours_c / cusz_c;
    assert!(
        (0.4..0.95).contains(&comp_ratio),
        "cuSZ-i/cuSZ compression ratio {comp_ratio:.2} outside the paper band"
    );
    let decomp_ratio = ours_d / cusz_d;
    assert!(
        (0.6..1.2).contains(&decomp_ratio),
        "cuSZ-i/cuSZ decompression ratio {decomp_ratio:.2} outside the paper band"
    );
    assert!(bc_c > ours_c * 0.7, "Bitcomp overhead too large: {bc_c:.1} vs {ours_c:.1}");
}

/// Table I / Fig. 9: the A100 outruns the A40 on these memory-bound
/// kernels roughly in proportion to bandwidth.
#[test]
fn fig9_a100_faster_than_a40() {
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let field = &ds.fields[0];
    let input = (field.data.len() * 4) as u64;
    let eb = ErrorBound::Rel(1e-2);
    let codec = CuszI::new(Config::new(eb));
    let (_, comp) = codec.compress_bytes(&field.data).unwrap();
    let t100 = TimingModel::new(A100).throughput_gbps(input, &comp.kernels);
    let t40 = TimingModel::new(A40).throughput_gbps(input, &comp.kernels);
    // On the few-MB CI-scale fields the dependent-phase latency (device-
    // independent) dominates, compressing the gap; the full bandwidth
    // ratio (~2.2x) emerges at --paper sizes, and the bandwidth-bound
    // regime itself is covered by the timing-model unit tests.
    assert!(t100 > t40 * 1.05, "A100 {t100:.1} GB/s vs A40 {t40:.1} GB/s");
}

/// § I: cuSZ-i's modelled GPU throughput exceeds the published CPU QoZ
/// rate (0.23 GB/s) by orders of magnitude — the reason GPU compressors
/// exist.
#[test]
fn gpu_throughput_dwarfs_cpu_rate() {
    let ds = generate(DatasetKind::Nyx, Scale::Small, 42);
    let field = &ds.fields[0];
    let input = (field.data.len() * 4) as u64;
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let (_, comp) = codec.compress_bytes(&field.data).unwrap();
    let gbps = TimingModel::new(A100).throughput_gbps(input, &comp.kernels);
    assert!(
        gbps > 50.0 * cuszi_repro::baselines::qoz::QOZ_CPU_THROUGHPUT_GBPS,
        "modelled {gbps:.1} GB/s should dwarf 0.23 GB/s"
    );
}
