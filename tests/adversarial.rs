//! Adversarial decompression: every codec fed random bytes — with and
//! without its own magic prefix — must return a typed error or (at
//! worst) wrong data, never panic or explode memory.

use cuszi_repro::baselines::{Cusz, Cuszp, Cuszx, Cuzfp, FzGpu, Qoz};
use cuszi_repro::core::{Codec, Config, CuszI};
use cuszi_repro::gpu_sim::A100;
use cuszi_repro::quant::ErrorBound;
use proptest::prelude::*;

fn codecs() -> Vec<(&'static [u8; 4], Box<dyn Codec>)> {
    let eb = ErrorBound::Rel(1e-3);
    vec![
        (b"CSZI", Box::new(CuszI::new(Config::new(eb)))),
        (b"CUSZ", Box::new(Cusz::new(eb, A100))),
        (b"CSZP", Box::new(Cuszp::new(eb, A100))),
        (b"CSZX", Box::new(Cuszx::new(eb, A100))),
        (b"FZGP", Box::new(FzGpu::new(eb, A100))),
        (b"CZFP", Box::new(Cuzfp::new(4.0, A100))),
        (b"QOZ_", Box::new(Qoz::new(eb))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn prop_random_bytes_never_panic(
        body in proptest::collection::vec(any::<u8>(), 0..4000),
    ) {
        for (magic, codec) in codecs() {
            // Raw garbage.
            let _ = codec.decompress_bytes(&body);
            // Garbage wearing the right magic: exercises the header
            // parser and section walkers past the first check.
            let mut with_magic = magic.to_vec();
            with_magic.extend_from_slice(&body);
            let _ = codec.decompress_bytes(&with_magic);
        }
    }

    #[test]
    fn prop_header_mutations_never_panic(
        mutations in proptest::collection::vec((0usize..120, any::<u8>()), 1..12),
        seed in any::<u64>(),
    ) {
        // Take a real archive and mutate only the header region — the
        // most security-sensitive bytes (they drive allocations).
        use cuszi_repro::tensor::{NdArray, Shape};
        let data = NdArray::from_fn(Shape::d3(8, 9, 10), |z, y, x| {
            ((x + y + z) as f32 * (0.05 + (seed % 7) as f32 * 0.01)).sin()
        });
        for (_magic, codec) in codecs() {
            let Ok((bytes, _)) = codec.compress_bytes(&data) else { continue };
            let mut bad = bytes.clone();
            for &(pos, val) in &mutations {
                let i = pos % bad.len().clamp(1, 120);
                bad[i] = val;
            }
            let _ = codec.decompress_bytes(&bad);
        }
    }
}
