//! Property-based integration tests: the error-bound contract and
//! corrupt-input robustness under randomised inputs.

use cuszi_repro::baselines::{Cusz, Cuszp, Cuszx, FzGpu};
use cuszi_repro::core::{Codec, Config, CuszI};
use cuszi_repro::metrics::check_error_bound_f32;
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::gpu_sim::A100;
use cuszi_repro::tensor::{NdArray, Shape};
use proptest::prelude::*;

/// Random small 3-d fields mixing smooth structure and noise.
fn field_strategy() -> impl Strategy<Value = NdArray<f32>> {
    (
        2usize..14,
        2usize..14,
        2usize..40,
        -5.0f32..5.0,
        0.01f32..2.0,
        0.0f32..0.5,
        any::<u64>(),
    )
        .prop_map(|(nz, ny, nx, base, amp, noise, seed)| {
            NdArray::from_fn(Shape::d3(nz, ny, nx), |z, y, x| {
                let h = (seed
                    .wrapping_mul(0x9E3779B97F4A7C15)
                    .wrapping_add((z * 131071 + y * 8191 + x) as u64))
                .wrapping_mul(0x2545F4914F6CDD1D);
                let n = ((h >> 40) as f32 / (1u64 << 24) as f32) - 0.5;
                base + amp * ((x as f32) * 0.2 + (y as f32) * 0.1).sin()
                    + amp * 0.3 * ((z as f32) * 0.15).cos()
                    + noise * n
            })
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prop_cuszi_error_bounded(data in field_strategy(), rel in 1e-4f64..1e-1) {
        let codec = CuszI::new(Config::new(ErrorBound::Rel(rel)));
        let c = codec.compress(&data).unwrap();
        let d = codec.decompress(&c.bytes).unwrap();
        prop_assert_eq!(
            cuszi_repro::metrics::check_error_bound(
                data.as_slice(), d.data.as_slice(), c.eb_abs),
            None
        );
    }

    #[test]
    fn prop_baselines_error_bounded(data in field_strategy(), rel in 1e-4f64..1e-1) {
        let eb = ErrorBound::Rel(rel);
        let range = {
            let s = data.as_slice();
            let (mn, mx) = s.iter().fold((f32::INFINITY, f32::NEG_INFINITY),
                |(a, b), &v| (a.min(v), b.max(v)));
            (mx - mn) as f64
        };
        prop_assume!(range > 0.0);
        let abs = rel * range;
        let codecs: Vec<Box<dyn Codec>> = vec![
            Box::new(Cusz::new(eb, A100)),
            Box::new(Cuszp::new(eb, A100)),
            Box::new(Cuszx::new(eb, A100)),
            Box::new(FzGpu::new(eb, A100)),
        ];
        for codec in codecs {
            let (bytes, _) = codec.compress_bytes(&data).unwrap();
            let (recon, _) = codec.decompress_bytes(&bytes).unwrap();
            prop_assert_eq!(
                check_error_bound_f32(data.as_slice(), recon.as_slice(), abs),
                None,
                "{} violated the bound", codec.name()
            );
        }
    }

    #[test]
    fn prop_corrupt_archives_never_panic(
        data in field_strategy(),
        flips in proptest::collection::vec((0usize..10_000, any::<u8>()), 1..20),
        cut in 0usize..10_000,
    ) {
        let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-2)));
        let c = codec.compress(&data).unwrap();
        // Bit flips anywhere in the archive.
        let mut bad = c.bytes.clone();
        for (pos, mask) in flips {
            let i = pos % bad.len();
            bad[i] ^= mask;
        }
        let _ = codec.decompress(&bad); // Ok or Err — never panic.
        // Truncation anywhere.
        let cut = cut % (c.bytes.len() + 1);
        let _ = codec.decompress(&c.bytes[..cut]);
    }

    #[test]
    fn prop_1d_and_2d_shapes(n in 2usize..600, rel in 1e-3f64..1e-1) {
        let d1 = NdArray::from_fn(Shape::d1(n), |_, _, x| ((x as f32) * 0.1).sin());
        let d2 = NdArray::from_fn(Shape::d2(n / 2 + 2, 17), |_, y, x| {
            ((x + y) as f32 * 0.07).cos()
        });
        for data in [d1, d2] {
            let codec = CuszI::new(Config::new(ErrorBound::Rel(rel)));
            let c = codec.compress(&data).unwrap();
            let d = codec.decompress(&c.bytes).unwrap();
            prop_assert_eq!(d.data.shape(), data.shape());
            prop_assert_eq!(
                cuszi_repro::metrics::check_error_bound(
                    data.as_slice(), d.data.as_slice(), c.eb_abs.max(1e-12)),
                None
            );
        }
    }
}
