//! The hot-path optimisations must be *pure* performance work: the
//! archive bytes are the oracle. {scalar, SIMD} sweep bodies x
//! {fused, unfused} histogram x {1, 4} streams must all produce the
//! same container on every dataset analogue, and that container must
//! decode back within the bound.
//!
//! The SIMD toggle is process-global, so this file serialises on a
//! mutex (mirroring `tests/fault_matrix.rs`) and restores the default
//! on every exit path via an RAII guard.

use std::sync::Mutex;

use cuszi_repro::core::{compress_fields_streams, Config, CuszI, NamedField};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::metrics::check_error_bound;
use cuszi_repro::predict::{scalar_sweep, set_scalar_sweep};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};

/// Serialises tests that flip the process-global sweep toggle.
static GUARD: Mutex<()> = Mutex::new(());

/// Restores the sweep mode on drop, panics included.
struct SweepMode(bool);

impl SweepMode {
    fn set(scalar: bool) -> Self {
        let prev = scalar_sweep();
        set_scalar_sweep(scalar);
        SweepMode(prev)
    }
}

impl Drop for SweepMode {
    fn drop(&mut self) {
        set_scalar_sweep(self.0);
    }
}

/// Crop to <= 32^3 so the 6-dataset x 8-variant sweep stays debug-fast.
fn crop(data: &NdArray<f32>) -> NdArray<f32> {
    let d = data.shape().dims3();
    let ext = [d[0].min(32), d[1].min(32), d[2].min(32)];
    NdArray::from_fn(Shape::d3(ext[0], ext[1], ext[2]), |z, y, x| data.get3(z, y, x))
}

#[test]
fn archives_identical_across_simd_fusion_and_streams_on_all_datasets() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let fields: Vec<(String, NdArray<f32>)> =
            ds.fields.iter().map(|f| (f.name.to_string(), crop(&f.data))).collect();
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();

        // Reference: scalar sweep, unfused stages, one stream.
        let reference = {
            let _m = SweepMode::set(true);
            let cfg = Config::new(ErrorBound::Rel(1e-3));
            compress_fields_streams(&named, cfg, 1).expect("reference compress").0.bytes
        };

        for scalar in [true, false] {
            for fuse in [false, true] {
                for streams in [1usize, 4] {
                    let _m = SweepMode::set(scalar);
                    let mut cfg = Config::new(ErrorBound::Rel(1e-3));
                    if fuse {
                        cfg = cfg.with_fusion();
                    }
                    let (got, _) =
                        compress_fields_streams(&named, cfg, streams).expect("variant compress");
                    assert_eq!(
                        got.bytes,
                        reference,
                        "{}: archive differs (scalar={scalar}, fuse={fuse}, streams={streams})",
                        kind.name()
                    );
                }
            }
        }
    }
}

#[test]
fn fused_simd_archive_decodes_within_bound() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let _m = SweepMode::set(false);
    let ds = generate(DatasetKind::Miranda, Scale::Small, 42);
    let data = crop(&ds.fields[0].data);
    let cfg = Config::new(ErrorBound::Rel(1e-3)).with_fusion();
    let codec = CuszI::new(cfg);
    let c = codec.compress(&data).expect("compress");
    let d = codec.decompress(&c.bytes).expect("decompress");
    assert_eq!(check_error_bound(data.as_slice(), d.data.as_slice(), c.eb_abs), None);
}

#[test]
fn autotuned_compression_is_stable_and_decodable() {
    let _g = GUARD.lock().unwrap_or_else(|p| p.into_inner());
    let ds = generate(DatasetKind::Nyx, Scale::Small, 42);
    let data = crop(&ds.fields[0].data);
    let cfg = Config::new(ErrorBound::Rel(1e-3)).with_kernel_autotune().with_fusion();
    let codec = CuszI::new(cfg);
    let a = codec.compress(&data).expect("autotuned compress");
    let b = codec.compress(&data).expect("cached autotuned compress");
    assert_eq!(a.bytes, b.bytes, "autotuner must be deterministic across runs");
    let d = codec.decompress(&a.bytes).expect("decompress");
    assert_eq!(check_error_bound(data.as_slice(), d.data.as_slice(), a.eb_abs), None);
}
