//! Drive the actual `cuszi` binary as a subprocess — the outermost
//! surface a user touches.

use std::path::PathBuf;
use std::process::Command;

fn binary() -> Option<PathBuf> {
    // target/<profile>/cuszi next to the test executable.
    let mut p = std::env::current_exe().ok()?;
    p.pop(); // test binary name
    if p.ends_with("deps") {
        p.pop();
    }
    p.push("cuszi");
    p.exists().then_some(p)
}

fn workdir(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("cuszi-proc-{}-{name}", std::process::id()));
    p
}

#[test]
fn binary_roundtrip_and_error_paths() {
    let Some(bin) = binary() else {
        // The binary is only present when the whole workspace was built
        // (cargo test --workspace); skip quietly under partial builds.
        eprintln!("cuszi binary not built; skipping process-level test");
        return;
    };
    let fin = workdir("in.f32");
    let farc = workdir("a.cszi");
    let fout = workdir("out.f32");

    let vals: Vec<f32> = (0..8 * 10 * 12)
        .map(|i| ((i % 12) as f32 * 0.2).sin() + (i / 120) as f32 * 0.05)
        .collect();
    let raw: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
    std::fs::write(&fin, &raw).unwrap();

    // Happy path.
    let out = Command::new(&bin)
        .args(["compress", "-i"])
        .arg(&fin)
        .arg("-o")
        .arg(&farc)
        .args(["--dims", "8x10x12", "--rel-eb", "1e-3", "--verify"])
        .output()
        .unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("verified"));

    let out = Command::new(&bin)
        .args(["decompress", "-i"])
        .arg(&farc)
        .arg("-o")
        .arg(&fout)
        .output()
        .unwrap();
    assert!(out.status.success());
    let recon = std::fs::read(&fout).unwrap();
    assert_eq!(recon.len(), raw.len());

    // Error paths exit nonzero with a message on stderr.
    let out = Command::new(&bin)
        .args(["compress", "-i"])
        .arg(&fin)
        .arg("-o")
        .arg(&farc)
        .args(["--dims", "9x10x12", "--rel-eb", "1e-3"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("need"));

    let out = Command::new(&bin).args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());

    // Help prints usage and exits zero.
    let out = Command::new(&bin).args(["--help"]).output().unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    for f in [fin, farc, fout] {
        let _ = std::fs::remove_file(f);
    }
}

/// A stderr line from a failed invocation: exactly one line, typed
/// (`error: ...`), and never a panic backtrace.
fn assert_one_line_error(out: &std::process::Output) {
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.starts_with("error: "), "stderr: {err:?}");
    assert_eq!(err.trim_end().lines().count(), 1, "stderr: {err:?}");
    assert!(!err.contains("panicked"), "stderr: {err:?}");
    assert!(!err.contains("RUST_BACKTRACE"), "stderr: {err:?}");
}

#[test]
fn corrupt_archives_exit_nonzero_with_one_line_errors() {
    let Some(bin) = binary() else {
        eprintln!("cuszi binary not built; skipping process-level test");
        return;
    };
    let fin = workdir("bad.cszi");
    let fout = workdir("bad-out.f32");

    // Garbage bytes, a truncated header, and an empty file: every one
    // must be a typed one-line error, never a panic.
    for (name, bytes) in [
        ("garbage", b"not an archive at all".to_vec()),
        ("truncated", vec![b'C', b'S', b'Z', b'I', 1]),
        ("empty", Vec::new()),
    ] {
        std::fs::write(&fin, &bytes).unwrap_or_else(|e| panic!("{name}: write: {e}"));
        let out = Command::new(&bin)
            .args(["decompress", "-i"])
            .arg(&fin)
            .arg("-o")
            .arg(&fout)
            .output()
            .unwrap();
        assert_one_line_error(&out);
        let out = Command::new(&bin).args(["info", "-i"]).arg(&fin).output().unwrap();
        assert_one_line_error(&out);
    }

    for f in [fin, fout] {
        let _ = std::fs::remove_file(f);
    }
}

#[test]
fn bad_flags_exit_nonzero_with_one_line_errors() {
    let Some(bin) = binary() else {
        eprintln!("cuszi binary not built; skipping process-level test");
        return;
    };
    for args in [
        vec!["compress", "--frobnicate"],
        vec!["frobnicate", "-i", "x"],
        vec!["compress", "-i", "/nonexistent", "-o", "/tmp/x", "--dims", "bogus"],
        vec!["compress", "-i", "/nonexistent", "-o", "/tmp/x", "--dims", "4x4", "--rel-eb", "nope"],
        vec!["compress", "-i", "/nonexistent", "-o", "/tmp/x", "--dims", "4x4", "--rel-eb", "1e-3", "--streams", "0"],
    ] {
        let out = Command::new(&bin).args(&args).output().unwrap();
        assert_one_line_error(&out);
    }
}
