//! The fault matrix: every injectable fault kind, at every
//! kernel-bearing stage, on every dataset analogue, at stream counts
//! 1 and 4 — each must surface as a typed `Err(CuszError::...)`,
//! never a panic. With nothing armed, archives must be byte-identical
//! to the unarmed reference (the injector's fast path is inert).
//!
//! Fault state is process-global (mirroring CUDA's per-context sticky
//! errors), so every test here serializes on one lock and disarms on
//! exit — including panic exits — via the `Armed` RAII guard.

use std::sync::Mutex;

use cuszi_repro::core::{
    compress_fields_sharded, compress_fields_streams, sched, Config, CuszError, CuszI, NamedField,
    ShardPlan, StageFaultKind,
};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::fault::{self, FaultSpec};
use cuszi_repro::gpu_sim::on_device;
use cuszi_repro::profile::{flight, minjson};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

/// Arm a fault for one scope; disarm on drop (even when an assertion
/// in the scope panics, so one failure can't poison later tests).
struct Armed;

impl Armed {
    fn new(spec: FaultSpec) -> Armed {
        fault::arm(spec);
        Armed
    }

    /// Arm in a specific device's fault domain (the `dev<N>:` scope of
    /// `CUSZI_FAULT`); the other domains stay untouched.
    fn on(dev: usize, spec: FaultSpec) -> Armed {
        fault::arm_on(dev, spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::disarm();
    }
}

/// Crop to <= 24^3 so the full matrix stays debug-fast; generators are
/// deterministic, so crops are stable across runs.
fn crop(data: &NdArray<f32>) -> NdArray<f32> {
    let d = data.shape().dims3();
    let ext = [d[0].min(24), d[1].min(24), d[2].min(24)];
    NdArray::from_fn(Shape::d3(ext[0], ext[1], ext[2]), |z, y, x| data.get3(z, y, x))
}

/// Up to two cropped fields per dataset analogue.
fn fields_of(kind: DatasetKind) -> Vec<(String, NdArray<f32>)> {
    let ds = generate(kind, Scale::Small, 42);
    ds.fields.iter().take(2).map(|f| (f.name.to_string(), crop(&f.data))).collect()
}

/// Remove this process's flight dumps so a later assertion can't pass
/// on a stale file from an earlier injection.
fn clear_flight_dump() {
    flight::clear_dumps();
}

/// Every injection must leave a black box: a parseable
/// `flight_<pid>.json` whose terminal event is the error, attributed to
/// the same stage as the typed `CuszError`. `expect_stage` is `None`
/// at stream counts where attribution is nondeterministic (several
/// concurrent jobs race to write the dump; the last writer wins).
fn assert_flight_dump(err: &CuszError, expect_stage: Option<&str>) {
    let path = flight::latest_dump().unwrap_or_else(|| panic!("no flight dump (after {err})"));
    let txt = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("no flight dump at {}: {e} (after {err})", path.display()));
    let v = minjson::parse(&txt).expect("flight dump is valid JSON");
    let stage = v
        .get("error")
        .and_then(|e| e.get("stage"))
        .and_then(|s| s.as_str())
        .expect("dump has error.stage");
    let events = v.get("events").and_then(|e| e.as_array()).expect("dump has events");
    let last = events.last().expect("dump has at least the error event");
    assert_eq!(last.get("kind").and_then(|k| k.as_str()), Some("error"), "{err}");
    assert_eq!(
        last.get("name").and_then(|n| n.as_str()),
        Some(stage),
        "terminal event must carry the error's stage ({err})"
    );
    if let Some(want) = expect_stage {
        assert_eq!(stage, want, "dump attribution disagrees with typed error ({err})");
    }
}

/// Kernel-bearing compress stages and the kernels they launch.
const COMPRESS_STAGES: &[(&str, &[&str])] = &[
    ("predict-quant", &["anchor-gather", "g-interp"]),
    ("histogram", &["histogram"]),
    ("huffman-encode", &["huffman-len", "huffman-emit"]),
    ("bitcomp", &["bitcomp-encode", "bitcomp-emit"]),
];

/// Kernel-bearing decompress stages and the kernels they launch. The
/// Huffman stage runs the two-pass gap-array decode: the speculative
/// sector pass plus the re-synchronization fix pass (always launched
/// on these datasets — some sectors of every crop mis-sync).
const DECOMPRESS_STAGES: &[(&str, &[&str])] = &[
    ("bitcomp-decode", &["bitcomp-decode"]),
    ("huffman-decode", &["huffman-decode-gap", "huffman-decode-gap-fix"]),
    ("g-interp-reconstruct", &["g-interp-decode"]),
];

#[test]
fn launch_faults_error_at_owning_stage_on_all_datasets() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    for kind in DatasetKind::ALL {
        let fields = fields_of(kind);
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();
        for streams in [1usize, 4] {
            for &(stage, kernels) in COMPRESS_STAGES {
                for &kernel in kernels {
                    clear_flight_dump();
                    let _armed = Armed::new(FaultSpec::LaunchNamed(kernel.into()));
                    let err = compress_fields_streams(&named, cfg, streams)
                        .expect_err(&format!(
                            "{}: launch:{kernel} at streams={streams} compressed Ok",
                            kind.name()
                        ));
                    match &err {
                        CuszError::StageError { stage: got, kind: fk, site } => {
                            assert_eq!(*fk, StageFaultKind::LaunchFailed, "{err}");
                            assert_eq!(site, kernel, "{err}");
                            if streams == 1 {
                                // One stream serializes the jobs, so the
                                // sticky fault drains in the stage that
                                // owns the dropped kernel.
                                assert_eq!(*got, stage, "{}: {err}", kind.name());
                            }
                        }
                        other => panic!("{}: launch:{kernel} gave {other:?}", kind.name()),
                    }
                    assert_flight_dump(&err, (streams == 1).then_some(stage));
                }
            }
        }
    }
}

#[test]
fn fused_stage_launch_faults_attribute_to_the_fused_stage() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3)).with_fusion();
    for kind in DatasetKind::ALL {
        let fields = fields_of(kind);
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();
        for streams in [1usize, 4] {
            // Under fusion the interp kernel is renamed `g-interp-hist`
            // and owns the histogram work; both kernels of the fused
            // stage must attribute to `predict-quant-histogram`.
            for kernel in ["anchor-gather", "g-interp-hist"] {
                clear_flight_dump();
                let _armed = Armed::new(FaultSpec::LaunchNamed(kernel.into()));
                let err = compress_fields_streams(&named, cfg, streams).expect_err(&format!(
                    "{}: launch:{kernel} at streams={streams} compressed Ok",
                    kind.name()
                ));
                match &err {
                    CuszError::StageError { stage: got, kind: fk, site } => {
                        assert_eq!(*fk, StageFaultKind::LaunchFailed, "{err}");
                        assert_eq!(site, kernel, "{err}");
                        if streams == 1 {
                            assert_eq!(*got, "predict-quant-histogram", "{}: {err}", kind.name());
                        }
                    }
                    other => panic!("{}: launch:{kernel} gave {other:?}", kind.name()),
                }
                assert_flight_dump(
                    &err,
                    (streams == 1).then_some("predict-quant-histogram"),
                );
            }
            // The separate histogram kernel never launches under
            // fusion: arming it must leave the run untouched.
            let _armed = Armed::new(FaultSpec::LaunchNamed("histogram".into()));
            compress_fields_streams(&named, cfg, streams)
                .unwrap_or_else(|e| panic!("{}: fused run tripped 'histogram': {e}", kind.name()));
        }
    }
}

#[test]
fn decompress_launch_faults_error_at_owning_stage_on_all_datasets() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let codec = CuszI::new(cfg);
    for kind in DatasetKind::ALL {
        let (name, data) = &fields_of(kind)[0];
        let archive = codec.compress(data).expect("unarmed compress").bytes;
        for &(stage, kernels) in DECOMPRESS_STAGES {
            for &kernel in kernels {
                clear_flight_dump();
                let _armed = Armed::new(FaultSpec::LaunchNamed(kernel.into()));
                let err = codec.decompress(&archive).expect_err(&format!(
                    "{}/{name}: launch:{kernel} decompressed Ok",
                    kind.name()
                ));
                assert_eq!(
                    err,
                    CuszError::StageError {
                        stage,
                        kind: StageFaultKind::LaunchFailed,
                        site: kernel.to_string(),
                    },
                    "{}/{name}",
                    kind.name()
                );
                assert_flight_dump(&err, Some(stage));
            }
        }
    }
}

#[test]
fn alloc_faults_error_without_panicking() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let codec = CuszI::new(cfg);
    let (_, data) = &fields_of(DatasetKind::ALL[0])[0];
    let archive = codec.compress(data).expect("unarmed compress").bytes;

    // Small N always trips (every kernel draws scratch buffers; the
    // assembly arena draws too). Each N may surface at a different
    // stage — the sweep asserts the kind, not the site.
    for n in [1u64, 2, 3, 5, 8, 13, 21, 34] {
        clear_flight_dump();
        let _armed = Armed::new(FaultSpec::AllocNth(n));
        match codec.compress(data) {
            Err(err @ CuszError::StageError { kind: StageFaultKind::AllocFailed, .. }) => {
                assert_flight_dump(&err, Some(err.stage()));
            }
            other => panic!("alloc:{n} compress gave {other:?}"),
        }
        clear_flight_dump();
        let _armed = Armed::new(FaultSpec::AllocNth(n));
        match codec.decompress(&archive) {
            Err(err @ CuszError::StageError { kind: StageFaultKind::AllocFailed, .. }) => {
                assert_flight_dump(&err, Some(err.stage()));
            }
            other => panic!("alloc:{n} decompress gave {other:?}"),
        }
    }
}

#[test]
fn poisoned_stream_fails_only_its_own_jobs() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let codec = CuszI::new(cfg);
    let fields = fields_of(DatasetKind::ALL[1]);
    let (_, data) = &fields[0];
    let reference = codec.compress(data).expect("unarmed compress").bytes;

    // Eight copies of the same field over four streams: jobs 1 and 5
    // land on the poisoned stream and must fail typed; the other six
    // must come back byte-identical to the unarmed archive.
    let items: Vec<&NdArray<f32>> = (0..8).map(|_| data).collect();
    clear_flight_dump();
    let _armed = Armed::new(FaultSpec::PoisonStream(1));
    let (results, report) = sched::run_jobs(&items, 4, |d, _| codec.compress(d));
    assert_eq!(report.streams, 4);
    for (i, r) in results.iter().enumerate() {
        if i % 4 == 1 {
            assert_eq!(
                r.as_ref().err(),
                Some(&CuszError::StageError {
                    stage: "schedule",
                    kind: StageFaultKind::StreamPoisoned,
                    site: "job slot never filled".to_string(),
                }),
                "job {i} ran on the poisoned stream"
            );
            assert_flight_dump(r.as_ref().unwrap_err(), Some("schedule"));
        } else {
            let c = r.as_ref().unwrap_or_else(|e| panic!("sibling job {i} failed: {e}"));
            assert_eq!(c.bytes, reference, "job {i}: sibling archive changed");
        }
    }
}

#[test]
fn poisoning_the_only_stream_fails_every_job_typed() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let fields = fields_of(DatasetKind::ALL[2]);
    let named: Vec<NamedField> =
        fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();
    clear_flight_dump();
    let _armed = Armed::new(FaultSpec::PoisonStream(0));
    let err = compress_fields_streams(&named, cfg, 1).expect_err("poisoned batch compressed Ok");
    assert!(
        matches!(
            err,
            CuszError::StageError { kind: StageFaultKind::StreamPoisoned, .. }
        ),
        "{err}"
    );
    assert_flight_dump(&err, Some(err.stage()));
}

#[test]
fn poisoned_device_fails_only_its_own_shards() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let codec = CuszI::new(cfg);
    let fields = fields_of(DatasetKind::ALL[3]);
    let (_, data) = &fields[0];
    let reference = codec.compress(data).expect("unarmed compress").bytes;

    // Eight shards round-robin over four devices, two per device, each
    // device scheduling its pair on its own (single) stream — the shard
    // layer's layout. Only device 2's domain is poisoned: its shards
    // must fail typed, every neighbour's archives stay byte-identical.
    let items: Vec<&NdArray<f32>> = (0..8).map(|_| data).collect();
    clear_flight_dump();
    let _armed = Armed::on(2, FaultSpec::PoisonStream(0));
    for dev in 0..4usize {
        let dev_items: Vec<&NdArray<f32>> = items.iter().skip(dev).step_by(4).copied().collect();
        let (results, _) =
            on_device(dev, || sched::run_jobs(&dev_items, 1, |d, _| codec.compress(d)));
        for (i, r) in results.iter().enumerate() {
            if dev == 2 {
                assert_eq!(
                    r.as_ref().err(),
                    Some(&CuszError::StageError {
                        stage: "schedule",
                        kind: StageFaultKind::StreamPoisoned,
                        site: "job slot never filled".to_string(),
                    }),
                    "device {dev} shard {i} ran despite the poisoned domain"
                );
            } else {
                let c = r
                    .as_ref()
                    .unwrap_or_else(|e| panic!("device {dev} shard {i} failed: {e}"));
                assert_eq!(c.bytes, reference, "device {dev} shard {i}: neighbour archive changed");
            }
        }
    }
}

#[test]
fn sharded_batch_attributes_poisoned_device_and_recovers() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    let fields = fields_of(DatasetKind::ALL[4]);
    let (_, data) = &fields[0];
    // Four shards at four devices: shard i lands on device i, so every
    // device (including the poisoned one) owns exactly one.
    let names: Vec<String> = (0..4).map(|i| format!("shard-{i}")).collect();
    let named: Vec<NamedField> = names.iter().map(|n| NamedField { name: n, data }).collect();
    let plan = ShardPlan::new(4).streams(1);
    let (reference, _) = compress_fields_sharded(&named, cfg, plan).expect("unarmed sharded");

    // A fault scoped to device 3 while the plan only visits devices
    // 0 and 1: the armed domain is never entered, so the batch is
    // untouched (domains are per-device, not process-wide).
    {
        let _armed = Armed::on(3, FaultSpec::PoisonStream(0));
        let (c, _) = compress_fields_sharded(&named, cfg, ShardPlan::new(2).streams(1))
            .expect("fault scoped to an unused device must not trip");
        assert_eq!(c.bytes, reference.bytes, "idle-domain fault leaked into the batch");
    }

    // Poison device 1's only stream: the batch fails typed and the
    // error site names the failing device.
    clear_flight_dump();
    let err = {
        let _armed = Armed::on(1, FaultSpec::PoisonStream(0));
        compress_fields_sharded(&named, cfg, plan).expect_err("poisoned device compressed Ok")
    };
    match &err {
        CuszError::StageError { stage, kind, site } => {
            assert_eq!(*stage, "schedule", "{err}");
            assert_eq!(*kind, StageFaultKind::StreamPoisoned, "{err}");
            assert!(site.starts_with("device 1: "), "site must name the device: {err}");
        }
        other => panic!("poisoned device gave {other:?}"),
    }
    assert_flight_dump(&err, Some("schedule"));

    // Disarmed, the same plan reproduces the reference bytes — no
    // residue in any domain.
    let (again, _) = compress_fields_sharded(&named, cfg, plan).expect("disarmed sharded");
    assert_eq!(again.bytes, reference.bytes, "disarmed sharded archive differs");
}

#[test]
fn disarmed_archives_are_byte_identical_on_all_datasets() {
    let _g = guard();
    let cfg = Config::new(ErrorBound::Rel(1e-3));
    for kind in DatasetKind::ALL {
        let fields = fields_of(kind);
        let named: Vec<NamedField> =
            fields.iter().map(|(n, d)| NamedField { name: n, data: d }).collect();
        let (reference, _) =
            compress_fields_streams(&named, cfg, 1).expect("unarmed compress");

        // Run a faulted compression in between, then recompress: the
        // injector must leave no residue once disarmed.
        {
            let _armed = Armed::new(FaultSpec::LaunchNamed("g-interp".into()));
            let _ = compress_fields_streams(&named, cfg, 1);
        }
        for streams in [1usize, 4] {
            let (again, _) =
                compress_fields_streams(&named, cfg, streams).expect("disarmed compress");
            assert_eq!(
                again.bytes,
                reference.bytes,
                "{}: disarmed archive differs at streams={streams}",
                kind.name()
            );
        }
    }
}
