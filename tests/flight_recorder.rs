//! End-to-end flight recorder behaviour: an untouched pipeline run
//! journals every stage boundary and every *named* kernel launch into
//! the always-on black box, and an injected fault drains the journal
//! into a parseable `flight_<pid>_<seq>.json` dump whose terminal
//! event carries the failing stage. Dumps are sequence-numbered, so
//! repeated faults in one process never clobber each other.
//!
//! Flight state (rings, dump file) and fault state are process-global,
//! so every test serializes on one lock, mirroring `fault_matrix.rs`.

use std::sync::Mutex;

use cuszi_repro::core::{Config, CuszError, CuszI};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::gpu_sim::fault::{self, FaultSpec};
use cuszi_repro::profile::{flight, minjson};
use cuszi_repro::quant::ErrorBound;
use cuszi_repro::tensor::{NdArray, Shape};

static GUARD: Mutex<()> = Mutex::new(());

fn guard() -> std::sync::MutexGuard<'static, ()> {
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

struct Armed;

impl Armed {
    fn new(spec: FaultSpec) -> Armed {
        fault::arm(spec);
        Armed
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        fault::disarm();
    }
}

fn small_field() -> NdArray<f32> {
    let ds = generate(DatasetKind::ALL[0], Scale::Small, 7);
    let d = ds.fields[0].data.shape().dims3();
    let ext = [d[0].min(20), d[1].min(20), d[2].min(20)];
    NdArray::from_fn(Shape::d3(ext[0], ext[1], ext[2]), |z, y, x| ds.fields[0].data.get3(z, y, x))
}

/// Events recorded after a marker count, for isolating one run's slice
/// of the (persistent, shared) rings.
fn events_since(ts_floor: u64) -> Vec<cuszi_repro::profile::FlightEvent> {
    let (evs, _) = flight::snapshot();
    evs.into_iter().filter(|e| e.ts_ns >= ts_floor).collect()
}

fn now_marker() -> u64 {
    // Record a sentinel and read its timestamp back: everything at or
    // after it belongs to the code under test.
    flight::record(cuszi_repro::profile::FlightKind::StageBegin, "test-marker", 0);
    let (evs, _) = flight::snapshot();
    evs.iter().rev().find(|e| e.name.as_str() == "test-marker").map(|e| e.ts_ns).unwrap_or(0)
}

#[test]
fn clean_roundtrip_journals_stages_and_named_launches() {
    let _g = guard();
    let data = small_field();
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));

    let t0 = now_marker();
    let c = codec.compress(&data).expect("compress");
    let d = codec.decompress(&c.bytes).expect("decompress");
    assert_eq!(d.data.shape(), data.shape());
    let evs = events_since(t0);

    use cuszi_repro::profile::FlightKind;
    // Every stage of both graphs has a matched begin/end pair.
    for stage in [
        "tune",
        "predict-quant",
        "histogram",
        "codebook",
        "huffman-encode",
        "assemble",
        "bitcomp",
        "finalize",
        "bitcomp-decode",
        "split-sections",
        "huffman-decode",
        "g-interp-reconstruct",
    ] {
        let begins = evs
            .iter()
            .filter(|e| e.kind == FlightKind::StageBegin && e.name.as_str() == stage)
            .count();
        let ends = evs
            .iter()
            .filter(|e| e.kind == FlightKind::StageEnd && e.name.as_str() == stage)
            .count();
        assert_eq!(begins, 1, "stage '{stage}' begin count");
        assert_eq!(ends, 1, "stage '{stage}' end count");
    }

    // Kernel launches are journaled, and every launch site passes a
    // real name — a bare `launch()` would show up as the "kernel"
    // placeholder here.
    let launches: Vec<&str> = evs
        .iter()
        .filter(|e| e.kind == FlightKind::Launch)
        .map(|e| e.name.as_str())
        .collect();
    assert!(launches.len() >= 10, "expected the full kernel roster, got {launches:?}");
    assert!(
        !launches.contains(&"kernel"),
        "anonymous launch site reached the pipeline: {launches:?}"
    );
    for name in ["anchor-gather", "g-interp", "histogram", "huffman-emit", "g-interp-decode"] {
        assert!(launches.contains(&name), "launch '{name}' missing from {launches:?}");
    }

    // A clean run must not write a black-box dump.
    flight::clear_dumps();
    let c2 = codec.compress(&data).expect("compress");
    assert!(!c2.bytes.is_empty());
    assert!(flight::latest_dump().is_none(), "clean run wrote a flight dump");
}

#[test]
fn injected_fault_leaves_a_parseable_black_box() {
    let _g = guard();
    // Hook installation normally happens at first pipeline entry; do it
    // up front so the arm itself (which precedes any compress) is
    // journaled too.
    flight::install();
    let data = small_field();
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    flight::clear_dumps();

    let err = {
        let _armed = Armed::new(FaultSpec::LaunchNamed("g-interp".into()));
        codec.compress(&data).expect_err("armed compress succeeded")
    };
    assert!(matches!(err, CuszError::StageError { stage: "predict-quant", .. }), "{err}");

    let txt = std::fs::read_to_string(flight::latest_dump().expect("flight dump written"))
        .expect("flight dump readable");
    let v = minjson::parse(&txt).expect("dump is valid JSON");
    assert_eq!(
        v.get("error").and_then(|e| e.get("stage")).and_then(|s| s.as_str()),
        Some("predict-quant")
    );
    let events = v.get("events").and_then(|e| e.as_array()).expect("events");
    let kind_of =
        |e: &minjson::Value| e.get("kind").and_then(|k| k.as_str()).unwrap_or("").to_string();
    let name_of =
        |e: &minjson::Value| e.get("name").and_then(|k| k.as_str()).unwrap_or("").to_string();

    // The journal tells the whole story: the armed spec, the sticky
    // trip (recorded as the fault latches, just before the launch is
    // journaled as dropped), and the terminal error. The rings persist
    // across runs, so the dump may also hold tail events of *earlier*
    // clean runs — take the last occurrence of each landmark.
    let rpos = |kind: &str, name: &str| {
        events.iter().rposition(|e| kind_of(e) == kind && name_of(e) == name)
    };
    let armed = rpos("fault-armed", "launch:g-interp").expect("fault-armed journaled");
    let dropped = rpos("launch-dropped", "g-interp").expect("dropped launch journaled");
    let tripped = rpos("fault-tripped", "g-interp").expect("fault trip journaled");
    let begun = rpos("stage-begin", "predict-quant").expect("failing stage begin journaled");
    assert!(armed < tripped && armed < dropped, "arm={armed} drop={dropped} trip={tripped}");
    assert!(begun < dropped, "stage must begin before its kernel drops");

    let last = events.last().expect("events nonempty");
    assert_eq!(kind_of(last), "error");
    assert_eq!(name_of(last), "predict-quant");

    // The failing stage is left open: its newest begin has no later end.
    assert!(
        rpos("stage-end", "predict-quant").is_none_or(|e| e < begun),
        "failed stage must not record a stage-end"
    );
}

#[test]
fn two_faults_in_one_process_leave_two_distinct_dumps() {
    let _g = guard();
    flight::install();
    let data = small_field();
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    flight::clear_dumps();

    for kernel in ["g-interp", "histogram"] {
        let _armed = Armed::new(FaultSpec::LaunchNamed(kernel.into()));
        codec.compress(&data).expect_err("armed compress succeeded");
    }

    let dumps = flight::written_dumps();
    assert_eq!(dumps.len(), 2, "each fault writes its own dump: {dumps:?}");
    assert_ne!(dumps[0], dumps[1], "dump paths must not collide");
    let mut stages = Vec::new();
    for p in &dumps {
        let txt = std::fs::read_to_string(p).expect("dump readable");
        let v = minjson::parse(&txt).expect("dump is valid JSON");
        stages.push(
            v.get("error")
                .and_then(|e| e.get("stage"))
                .and_then(|s| s.as_str())
                .expect("dump has error.stage")
                .to_string(),
        );
    }
    assert_eq!(stages, ["predict-quant", "histogram"], "dumps kept their own attribution");
}

#[test]
fn dump_honours_flight_dir_override() {
    let _g = guard();
    // `dump_dir` reads the env on every call (unlike the once-latched
    // enable switch), so pointing it at a scratch dir is test-safe as
    // long as this lock is held.
    let dir = std::env::temp_dir().join(format!("cuszi-flight-it-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::env::set_var("CUSZI_FLIGHT_DIR", &dir);
    let path = flight::dump_on_error("predict-quant", "synthetic");
    std::env::remove_var("CUSZI_FLIGHT_DIR");
    let path = path.expect("dump written");
    assert_eq!(path.parent(), Some(dir.as_path()));
    assert!(path.exists());
    std::fs::remove_dir_all(&dir).ok();
}
