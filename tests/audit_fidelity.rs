//! Fidelity-audit acceptance: on every dataset analogue the streaming
//! audit's sampled decode-verify must see max abs error within the
//! bound, per interpolation level, and the per-level partition must
//! cover the field exactly.

use cuszi_repro::core::{audit, Config, CuszI};
use cuszi_repro::datagen::{generate, DatasetKind, Scale};
use cuszi_repro::quant::ErrorBound;

#[test]
fn audit_bound_holds_on_all_six_datasets() {
    for kind in DatasetKind::ALL {
        let ds = generate(kind, Scale::Small, 42);
        let field = &ds.fields[0].data;
        let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)).with_audit());
        let c = codec.compress(field).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        let mut rep = c
            .audit
            .clone()
            .unwrap_or_else(|| panic!("{}: audit report missing", kind.name()));

        // The per-level partition covers the field exactly once.
        assert_eq!(rep.total, field.len() as u64, "{}", kind.name());
        let sum: u64 = rep.levels.iter().map(|l| l.elements).sum();
        assert_eq!(sum, field.len() as u64, "{}: levels must partition the field", kind.name());
        assert!(rep.anchor_share() > 0.0 && rep.anchor_share() < 0.5, "{}", kind.name());

        // Sampled decode-verify: max abs error within eb on every level.
        let d = codec.decompress(&c.bytes).unwrap_or_else(|e| panic!("{}: {e}", kind.name()));
        audit::verify_decode(
            &mut rep,
            field,
            &d.data,
            audit::default_sample_stride(field.len()),
        );
        assert!(rep.verified() > 0, "{}: no samples verified", kind.name());
        assert!(
            rep.bound_ok(),
            "{}: sampled max err {:.3e} exceeds eb {:.3e}\n{}",
            kind.name(),
            rep.max_abs_err(),
            rep.eb_abs,
            rep.render_table()
        );
        let table = rep.render_table();
        assert!(table.contains("fidelity audit"), "{table}");
        assert!(!table.contains("EXCEEDS"), "{}: {table}", kind.name());
    }
}

#[test]
fn audit_is_off_by_default_and_costs_nothing() {
    let ds = generate(DatasetKind::Nyx, Scale::Small, 7);
    let codec = CuszI::new(Config::new(ErrorBound::Rel(1e-3)));
    let c = codec.compress(&ds.fields[0].data).unwrap();
    assert!(c.audit.is_none());
}
